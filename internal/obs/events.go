package obs

import (
	"fmt"
	"sync"
)

// Event is one timeline event emitted by an instrumented component. It
// is deliberately small (24 bytes) because the simulator emits one per
// memory reference on the traced path; semantic meaning lives in the
// emitter's Kind table (see sim.EventKind), which the exporter receives
// separately so this package stays dependency-free.
type Event struct {
	// TS is the event start time in simulated cycles.
	TS uint64
	// Dur is the event duration in cycles; 0 renders as an instant.
	Dur uint64
	// Track is the timeline the event belongs to (processors first, then
	// per-cluster bus tracks, by the simulator's convention).
	Track int32
	// Kind indexes the emitter's kind-name table.
	Kind uint8
	// Addr is the memory address involved, when meaningful.
	Addr uint32
}

// DefaultCollectorCap is the default per-collector event bound: enough
// to cover a QuickScale run in full and to keep a 32-point sweep's
// export in the hundreds of megabytes at worst. Events past the cap are
// dropped and counted.
const DefaultCollectorCap = 1 << 16

// Collector accumulates events for one simulation run into a bounded
// buffer. Emit is not synchronized: a collector belongs to exactly one
// run, and the simulator is single-goroutine per run (the sweep engine
// creates one collector per design point). A nil collector no-ops.
type Collector struct {
	name       string
	pid        int
	cap        int
	events     []Event
	dropped    uint64
	trackNames map[int32]string
}

// NewCollector builds a standalone collector (pid 0). Collectors that
// are part of a multi-run trace come from TraceSet.NewCollector instead.
func NewCollector(name string, capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCollectorCap
	}
	return &Collector{name: name, cap: capacity}
}

// Emit records one event, dropping (and counting) once the buffer is
// full. Safe on a nil receiver.
func (c *Collector) Emit(e Event) {
	if c == nil {
		return
	}
	if len(c.events) >= c.cap {
		c.dropped++
		return
	}
	c.events = append(c.events, e)
}

// SetTrackName labels a track id for the exporter ("cpu 3",
// "bus (cluster 1)"). Unlabelled tracks render as "track N".
func (c *Collector) SetTrackName(id int32, name string) {
	if c == nil {
		return
	}
	if c.trackNames == nil {
		c.trackNames = make(map[int32]string)
	}
	c.trackNames[id] = name
}

// Name returns the collector's label (the design-point name).
func (c *Collector) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Len returns the number of buffered events.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.events)
}

// Dropped returns the number of events discarded after the buffer
// filled.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// TraceSet groups per-run collectors into one exportable trace: each
// collector becomes a Chrome trace "process" with its own tracks.
// NewCollector is safe to call concurrently (the sweep engine creates
// collectors from worker goroutines); each returned collector is then
// used by a single goroutine.
type TraceSet struct {
	mu        sync.Mutex
	kindNames []string
	cols      []*Collector
}

// NewTraceSet builds an empty trace set. kindNames maps Event.Kind to
// the human-readable event names used in the export (the emitter's
// table, e.g. sim.EventKindNames).
func NewTraceSet(kindNames []string) *TraceSet {
	return &TraceSet{kindNames: append([]string(nil), kindNames...)}
}

// NewCollector adds a collector for one run; its pid in the export is
// its creation order.
func (s *TraceSet) NewCollector(name string, capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCollectorCap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Collector{name: name, pid: len(s.cols), cap: capacity}
	s.cols = append(s.cols, c)
	return c
}

// Collectors returns the set's collectors in pid order.
func (s *TraceSet) Collectors() []*Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Collector(nil), s.cols...)
}

// kindName resolves an event kind to its exported name.
func (s *TraceSet) kindName(k uint8) string {
	if int(k) < len(s.kindNames) {
		return s.kindNames[k]
	}
	return fmt.Sprintf("event %d", k)
}
