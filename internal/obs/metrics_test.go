package obs

import (
	"math"
	"sync"
	"testing"
)

// The nil-disabled contract is the package's core promise: every metric
// type must be a safe no-op on a nil receiver.
func TestNilReceiversNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil Counter.Value != 0")
	}

	var g *Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 {
		t.Error("nil Gauge.Value != 0")
	}

	var h *Histogram
	h.Observe(42)
	if s := h.Snapshot(); s.Count != 0 || len(s.Bounds) != 0 {
		t.Errorf("nil Histogram.Snapshot = %+v", s)
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", CycleBuckets) != nil {
		t.Error("nil Registry returned non-nil metric")
	}
	// The full disabled chain: nil registry -> nil metric -> no-op.
	r.Counter("x").Inc()
	r.Histogram("x", CycleBuckets).Observe(9)
	if r.Snapshot() != nil {
		t.Error("nil Registry.Snapshot != nil")
	}

	var col *Collector
	col.Emit(Event{TS: 1})
	col.SetTrackName(0, "cpu 0")
	if col.Len() != 0 || col.Dropped() != 0 || col.Name() != "" {
		t.Error("nil Collector is not a no-op")
	}
}

func TestCounterAndGauge(t *testing.T) {
	c := &Counter{}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Counter = %d, want 5", c.Value())
	}
	g := &Gauge{}
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("Gauge = %d, want 6", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1+10+11+100+101+5000 {
		t.Errorf("Count=%d Sum=%d", s.Count, s.Sum)
	}
	want := []uint64{2, 2, 2} // <=10, <=100, overflow
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], n)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 30, 40})
	// 100 samples uniform over (0, 40]: quantiles track the sample rank.
	for i := 1; i <= 100; i++ {
		h.Observe(uint64((i*40 + 99) / 100))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-20) > 2.5 {
		t.Errorf("p50 = %v, want ~20", q)
	}
	if q := s.Quantile(0.95); math.Abs(q-38) > 2.5 {
		t.Errorf("p95 = %v, want ~38", q)
	}
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Errorf("p0 = %v, want within first bucket", q)
	}
	// Overflow samples are attributed to the last bound.
	h2 := NewHistogram([]uint64{10})
	h2.Observe(9999)
	if q := h2.Snapshot().Quantile(0.99); q != 10 {
		t.Errorf("overflow quantile = %v, want 10", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]uint64{nil, {}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter lookup is not stable")
	}
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-1)
	r.Histogram("c", CycleBuckets).Observe(64)

	snap := r.Snapshot()
	if snap["a"] != uint64(3) {
		t.Errorf("snapshot a = %v", snap["a"])
	}
	if snap["b"] != int64(-1) {
		t.Errorf("snapshot b = %v", snap["b"])
	}
	hm, ok := snap["c"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Errorf("snapshot c = %v", snap["c"])
	}
	buckets, ok := hm["buckets"].(map[string]uint64)
	if !ok || buckets["le_64"] != 1 {
		t.Errorf("snapshot c buckets = %v", hm["buckets"])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h", CycleBuckets).Observe(uint64(j % 128))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", CycleBuckets).Snapshot().Count; got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestCollectorBounded(t *testing.T) {
	c := NewCollector("run", 4)
	for i := 0; i < 10; i++ {
		c.Emit(Event{TS: uint64(i)})
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
	if c.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", c.Dropped())
	}
	if c.Name() != "run" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestTraceSetPIDs(t *testing.T) {
	ts := NewTraceSet([]string{"a", "b"})
	c0 := ts.NewCollector("first", 0)
	c1 := ts.NewCollector("second", 0)
	cols := ts.Collectors()
	if len(cols) != 2 || cols[0] != c0 || cols[1] != c1 {
		t.Fatalf("Collectors = %v", cols)
	}
	if c0.pid != 0 || c1.pid != 1 {
		t.Errorf("pids = %d, %d, want 0, 1", c0.pid, c1.pid)
	}
	if ts.kindName(0) != "a" || ts.kindName(9) != "event 9" {
		t.Error("kindName resolution wrong")
	}
}

// TestLocalHistogram: the staging buffer observes without atomics and
// Flush merges the batch into the shared histogram, repeatably.
func TestLocalHistogram(t *testing.T) {
	var nilH *Histogram
	if nilH.Local() != nil {
		t.Fatal("nil histogram must hand out a nil local buffer")
	}
	var nilL *LocalHistogram
	nilL.Observe(1) // no-op
	nilL.Flush()

	h := NewHistogram([]uint64{10, 100})
	l := h.Local()
	l.Observe(5)
	l.Observe(50)
	l.Observe(500)
	if got := h.Snapshot().Count; got != 0 {
		t.Errorf("shared histogram saw %d samples before Flush", got)
	}
	l.Flush()
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 555 {
		t.Errorf("after flush: count=%d sum=%d, want 3/555", s.Count, s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("bucket counts = %v", s.Counts)
	}
	// Flush resets: a second batch adds, not doubles.
	l.Observe(7)
	l.Flush()
	l.Flush() // empty flush no-ops
	if got := h.Snapshot().Count; got != 4 {
		t.Errorf("after second flush: count=%d, want 4", got)
	}
}
