package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"go.goroutines":      "go_goroutines",
		"http.v1_sweep.ms":   "http_v1_sweep_ms",
		"serve.jobs-running": "serve_jobs_running",
		"crossval.mp3d.max":  "crossval_mp3d_max",
		"9lives":             "_9lives",
		"already_legal:name": "already_legal:name",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine matches one sample line of the text exposition format: a
// legal metric name (with optional {le="..."} labels) and a number.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE.+-]+$|^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]*` +
	` (counter|gauge|histogram)$`)

// TestWritePrometheusFormat: every line of the exposition is either a
// # TYPE line or a sample, histogram buckets are cumulative and end in
// +Inf, and the families come out in sorted order.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs_done").Add(7)
	r.Gauge("go.goroutines").Set(12)
	r.FGauge("crossval.mp3d.max_abs_err").Set(0.25)
	h := r.Histogram("serve.job_ms", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, ln := range lines {
		if !promLine.MatchString(ln) {
			t.Errorf("malformed exposition line: %q", ln)
		}
	}
	for _, want := range []string{
		"# TYPE serve_jobs_done counter\nserve_jobs_done 7\n",
		"# TYPE go_goroutines gauge\ngo_goroutines 12\n",
		"# TYPE crossval_mp3d_max_abs_err gauge\ncrossval_mp3d_max_abs_err 0.25\n",
		"# TYPE serve_job_ms histogram\n",
		`serve_job_ms_bucket{le="10"} 1`,
		`serve_job_ms_bucket{le="100"} 2`,
		`serve_job_ms_bucket{le="+Inf"} 3`,
		"serve_job_ms_sum 555\n",
		"serve_job_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families sorted by name: crossval < go < serve.
	ci := strings.Index(out, "crossval_")
	gi := strings.Index(out, "go_goroutines")
	si := strings.Index(out, "serve_job")
	if !(ci < gi && gi < si) {
		t.Errorf("families not sorted: crossval@%d go@%d serve@%d", ci, gi, si)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("two renders of the same registry differ")
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestCaptureRuntimeMetrics(t *testing.T) {
	CaptureRuntimeMetrics(nil) // nil-disabled
	r := NewRegistry()
	CaptureRuntimeMetrics(r)
	if got := r.Gauge("go.goroutines").Value(); got < 1 {
		t.Errorf("go.goroutines = %d, want >= 1", got)
	}
	if got := r.Gauge("go.heap_alloc_bytes").Value(); got <= 0 {
		t.Errorf("go.heap_alloc_bytes = %d, want > 0", got)
	}
	if got := r.Gauge("go.next_gc_bytes").Value(); got <= 0 {
		t.Errorf("go.next_gc_bytes = %d, want > 0", got)
	}
}

func TestFGauge(t *testing.T) {
	var nilG *FGauge
	nilG.Set(1.5) // nil-disabled
	if nilG.Value() != 0 {
		t.Error("nil FGauge Value should be 0")
	}
	r := NewRegistry()
	g := r.FGauge("x.err")
	g.Set(0.125)
	if got := g.Value(); got != 0.125 {
		t.Errorf("FGauge = %v, want 0.125", got)
	}
	if r.FGauge("x.err") != g {
		t.Error("same name must return the same FGauge")
	}
	snap := r.Snapshot()
	if got, ok := snap["x.err"].(float64); !ok || got != 0.125 {
		t.Errorf("snapshot[x.err] = %v (%T)", snap["x.err"], snap["x.err"])
	}
}
