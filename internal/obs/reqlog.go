package obs

import (
	"sync"
	"time"
)

// RequestRecord is one completed HTTP request as retained by the
// RequestLog ring: identity, route, outcome, and the per-span timing
// breakdown captured by the request's Trace.
type RequestRecord struct {
	ID     string         `json:"id"`
	Method string         `json:"method"`
	Route  string         `json:"route"`
	Status int            `json:"status"`
	Start  time.Time      `json:"start"`
	DurNS  int64          `json:"dur_ns"`
	Spans  []SpanSnapshot `json:"spans,omitempty"`
}

// RequestLog is a fixed-size ring buffer of recent requests, in the
// spirit of x/net/trace's request log: cheap enough to leave on, bounded
// no matter the traffic. A nil *RequestLog drops records and snapshots
// to nil, keeping the package's nil-disabled contract.
type RequestLog struct {
	mu   sync.Mutex
	ring []RequestRecord
	next int
	full bool
}

// NewRequestLog returns a ring that retains the last n requests
// (n <= 0 defaults to 64).
func NewRequestLog(n int) *RequestLog {
	if n <= 0 {
		n = 64
	}
	return &RequestLog{ring: make([]RequestRecord, n)}
}

// Record appends one completed request, evicting the oldest when full.
func (l *RequestLog) Record(r RequestRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = r
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Snapshot returns the retained requests, newest first.
func (l *RequestLog) Snapshot() []RequestRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]RequestRecord, 0, n)
	// Walk backwards from the most recent write, wrapping once.
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.ring)
		}
		out = append(out, l.ring[idx])
	}
	return out
}
