package obs

import (
	"context"
	"log/slog"
	"regexp"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !hex16.MatchString(a) || !hex16.MatchString(b) {
		t.Fatalf("ids not 16 hex chars: %q %q", a, b)
	}
	if a == b {
		t.Errorf("two ids collided: %q", a)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" {
		t.Error("empty context must carry no request id")
	}
	if TraceFrom(ctx) != nil {
		t.Error("empty context must carry no trace")
	}
	tr := NewTrace("abc")
	ctx = ContextWithRequestID(ctx, "abc")
	ctx = ContextWithTrace(ctx, tr)
	if got := RequestIDFrom(ctx); got != "abc" {
		t.Errorf("RequestIDFrom = %q, want abc", got)
	}
	if got := TraceFrom(ctx); got != tr {
		t.Errorf("TraceFrom = %p, want %p", got, tr)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req1")
	if tr.ID() != "req1" {
		t.Errorf("ID = %q", tr.ID())
	}
	s1 := tr.StartSpan("decode")
	s1.SetAttr("bytes", "120")
	s1.End()
	s1.End() // second End must not move the end time
	_ = tr.StartSpan("simulate")
	time.Sleep(time.Millisecond)
	// s2 left un-Ended on purpose: it must still snapshot with the
	// duration it has accrued so far.
	snaps := tr.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d spans, want 2", len(snaps))
	}
	if snaps[0].Name != "decode" || snaps[1].Name != "simulate" {
		t.Errorf("span order: %q, %q", snaps[0].Name, snaps[1].Name)
	}
	if snaps[0].Attrs["bytes"] != "120" {
		t.Errorf("attrs = %v", snaps[0].Attrs)
	}
	if snaps[0].StartNS < 0 || snaps[0].DurNS < 0 {
		t.Errorf("negative timing: start=%d dur=%d", snaps[0].StartNS, snaps[0].DurNS)
	}
	if snaps[1].DurNS < int64(time.Millisecond) {
		t.Errorf("un-ended span duration = %dns, want >= 1ms", snaps[1].DurNS)
	}
	// The second snapshot of an Ended span must agree with the first.
	again := tr.Snapshot()
	if again[0].DurNS != snaps[0].DurNS {
		t.Errorf("ended span duration moved: %d -> %d", snaps[0].DurNS, again[0].DurNS)
	}
}

// TestNilTraceNoOp: the nil-disabled contract — nil traces hand out nil
// spans and every method no-ops without branching at the call site.
func TestNilTraceNoOp(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil trace ID should be empty")
	}
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace must return a nil span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil trace Snapshot = %v, want nil", got)
	}
}

func TestRequestLogRing(t *testing.T) {
	l := NewRequestLog(3)
	for i := 1; i <= 5; i++ {
		l.Record(RequestRecord{ID: string(rune('a' + i - 1)), Status: 200})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring retained %d, want 3", len(got))
	}
	// Newest first: e, d, c (a and b evicted).
	for i, want := range []string{"e", "d", "c"} {
		if got[i].ID != want {
			t.Errorf("snapshot[%d].ID = %q, want %q", i, got[i].ID, want)
		}
	}
}

func TestRequestLogPartial(t *testing.T) {
	l := NewRequestLog(8)
	l.Record(RequestRecord{ID: "x"})
	l.Record(RequestRecord{ID: "y"})
	got := l.Snapshot()
	if len(got) != 2 || got[0].ID != "y" || got[1].ID != "x" {
		t.Errorf("partial ring snapshot = %+v", got)
	}
}

func TestRequestLogNil(t *testing.T) {
	var l *RequestLog
	l.Record(RequestRecord{ID: "dropped"}) // must not panic
	if got := l.Snapshot(); got != nil {
		t.Errorf("nil log Snapshot = %v, want nil", got)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"":        slog.LevelInfo,
		"WARN":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"Error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel(loud) should fail")
	}
}
