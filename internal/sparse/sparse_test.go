package sparse

import (
	"testing"
	"testing/quick"
)

// tiny returns a hand-built 5x5 pattern:
//
//	x . . . .
//	x x . . .
//	. x x . .
//	x . . x .
//	. . x x x
//
// (lower triangle; columns hold diagonal + below-diagonal entries).
func tiny() *Pattern {
	return &Pattern{
		N:      5,
		ColPtr: []int32{0, 3, 5, 7, 9, 10},
		RowIdx: []int32{0, 1, 3, 1, 2, 2, 4, 3, 4, 4},
	}
}

func TestTinyValid(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	p := tiny()
	p.RowIdx[0] = 1 // column 0 no longer starts at diagonal
	if p.Validate() == nil {
		t.Error("accepted missing diagonal")
	}
	p = tiny()
	p.RowIdx[2] = 1 // duplicate row index in column 0
	if p.Validate() == nil {
		t.Error("accepted non-increasing rows")
	}
	p = tiny()
	p.ColPtr[5] = 9
	if p.Validate() == nil {
		t.Error("accepted bad colptr endpoint")
	}
	p = &Pattern{N: 0}
	if p.Validate() == nil {
		t.Error("accepted empty matrix")
	}
}

func TestEliminationTreeTiny(t *testing.T) {
	// For the tiny matrix: column 0 connects to rows 1,3 -> parent 1.
	// Column 1 connects to 2 -> parent 2. Column 2 to 4 -> parent... but
	// column 3's entry row 4 and fill: parent[2]=4? Work through Liu:
	// edges (1,0),(3,0),(2,1),(4,2),(4,3).
	// i=1: j=0: parent[0]=1.
	// i=2: j=1: parent[1]=2.
	// i=3: j=0: climb 0->1->2: parent[2]=3.
	// i=4: j=2: climb 2->3: parent[3]=4. j=3: already ancestor 4.
	parent := EliminationTree(tiny())
	want := []int32{1, 2, 3, 4, -1}
	for j, w := range want {
		if parent[j] != w {
			t.Errorf("parent[%d] = %d, want %d", j, parent[j], w)
		}
	}
}

func TestEtreeParentAlwaysHigher(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 3})
	parent := EliminationTree(a)
	for j, p := range parent {
		if p != -1 && p <= int32(j) {
			t.Fatalf("parent[%d] = %d, not greater than the column", j, p)
		}
	}
}

func TestSymbolicFactorContainsA(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: 10, GridH: 5, Seed: 4})
	parent := EliminationTree(a)
	l := SymbolicFactor(a, parent)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Nnz() < a.Nnz() {
		t.Errorf("factor has %d entries, matrix has %d; fill cannot shrink", l.Nnz(), a.Nnz())
	}
	// Every A entry appears in L.
	for j := 0; j < a.N; j++ {
		lset := map[int32]bool{}
		for _, r := range l.Col(j) {
			lset[r] = true
		}
		for _, r := range a.Col(j) {
			if !lset[r] {
				t.Fatalf("A entry (%d,%d) missing from L", r, j)
			}
		}
	}
}

func TestSymbolicFactorFillPath(t *testing.T) {
	// The tiny matrix's edge (3,0) plus parent chain forces fill (3,2)
	// per the elimination process. Column 2 of L must contain row 3.
	a := tiny()
	l := SymbolicFactor(a, EliminationTree(a))
	found := false
	for _, r := range l.Col(2) {
		if r == 3 {
			found = true
		}
	}
	if !found {
		t.Error("expected fill entry (3,2) in L")
	}
}

// Structural property from sparse-matrix theory: struct(L_child) \ {child}
// is contained in struct(L_parent).
func TestFactorNestingProperty(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: 12, GridH: 6, Seed: 9})
	parent := EliminationTree(a)
	l := SymbolicFactor(a, parent)
	for c := 0; c < a.N; c++ {
		p := parent[c]
		if p < 0 {
			continue
		}
		pset := map[int32]bool{}
		for _, r := range l.Col(int(p)) {
			pset[r] = true
		}
		for _, r := range l.Col(c)[1:] { // skip the diagonal
			if r == p {
				continue
			}
			if r > p && !pset[r] {
				t.Fatalf("L(:,%d) entry %d beyond parent %d missing from parent column", c, r, p)
			}
		}
	}
}

func TestBCSSTK14LikeScale(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 1})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.N != 1806 {
		t.Errorf("N = %d, want 1806", a.N)
	}
	// BCSSTK14 has ~32.6k stored entries; accept a generous band.
	if a.Nnz() < 15000 || a.Nnz() > 60000 {
		t.Errorf("Nnz = %d, want 15k-60k (BCSSTK14-like)", a.Nnz())
	}
}

func TestBCSSTK14LikeDeterministic(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 7})
	b := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 7})
	if a.Nnz() != b.Nnz() {
		t.Fatal("same seed produced different matrices")
	}
	for i := range a.RowIdx {
		if a.RowIdx[i] != b.RowIdx[i] {
			t.Fatal("same seed produced different structure")
		}
	}
}

func TestLevels(t *testing.T) {
	parent := []int32{1, 2, 3, 4, -1} // a chain
	level, n := Levels(parent)
	if n != 5 {
		t.Errorf("chain levels = %d, want 5", n)
	}
	for j, l := range level {
		if l != int32(j) {
			t.Errorf("level[%d] = %d, want %d", j, l, j)
		}
	}
	// A star: all children of the last node.
	parent = []int32{4, 4, 4, 4, -1}
	level, n = Levels(parent)
	if n != 2 {
		t.Errorf("star levels = %d, want 2", n)
	}
	if level[4] != 1 {
		t.Errorf("root level = %d, want 1", level[4])
	}
}

func TestLevelsRespectDependencies(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: 14, GridH: 6, Seed: 11})
	parent := EliminationTree(a)
	level, _ := Levels(parent)
	for j, p := range parent {
		if p >= 0 && level[p] <= level[j] {
			t.Fatalf("parent %d of %d at level %d <= child level %d", p, j, level[p], level[j])
		}
	}
}

func TestFactorFlopsAndParallelism(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 1})
	parent := EliminationTree(a)
	l := SymbolicFactor(a, parent)
	flops := FactorFlops(l)
	if flops <= 0 {
		t.Fatal("non-positive flop count")
	}
	par := Parallelism(l, parent)
	// The paper's whole point for Cholesky: BCSSTK14 has limited
	// concurrency — speedup saturates around 3-3.5 on 32 processors.
	if par < 1.2 || par > 14 {
		t.Errorf("average parallelism = %.1f, want limited (1.2-14)", par)
	}
	t.Logf("N=%d nnz(A)=%d nnz(L)=%d flops=%d parallelism=%.1f",
		a.N, a.Nnz(), l.Nnz(), flops, par)
}

// Property: symbolic factorization is monotone — adding the etree parent
// chain, every column's structure is a subset of rows >= the column.
func TestSymbolicFactorRowRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: 8, GridH: 4, Seed: seed})
		l := SymbolicFactor(a, EliminationTree(a))
		if l.Validate() != nil {
			return false
		}
		for j := 0; j < l.N; j++ {
			for _, r := range l.Col(j) {
				if r < int32(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
