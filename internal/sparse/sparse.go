// Package sparse is the sparse-matrix substrate for the Cholesky
// workload: compressed-sparse-column symmetric patterns, a generator for
// a BCSSTK14-like structural-engineering matrix, elimination trees,
// symbolic factorization (fill-in computation), and elimination-tree
// level scheduling. It implements the standard algorithms from sparse
// direct-methods practice; the Cholesky workload builds its reference
// trace on top of them.
package sparse

import (
	"fmt"
	"sort"

	"sccsim/internal/synth"
)

// Pattern is the nonzero structure of the lower triangle (including the
// diagonal) of a symmetric matrix, in compressed sparse column form.
// Row indices within a column are strictly increasing and start at the
// diagonal.
type Pattern struct {
	N      int
	ColPtr []int32 // len N+1
	RowIdx []int32 // len Nnz
}

// Nnz returns the stored-entry count (lower triangle incl. diagonal).
func (p *Pattern) Nnz() int { return len(p.RowIdx) }

// Col returns the row indices of column j.
func (p *Pattern) Col(j int) []int32 {
	return p.RowIdx[p.ColPtr[j]:p.ColPtr[j+1]]
}

// Validate checks structural invariants.
func (p *Pattern) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("sparse: N = %d", p.N)
	}
	if len(p.ColPtr) != p.N+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(p.ColPtr), p.N+1)
	}
	if p.ColPtr[0] != 0 || int(p.ColPtr[p.N]) != len(p.RowIdx) {
		return fmt.Errorf("sparse: ColPtr endpoints %d..%d, want 0..%d", p.ColPtr[0], p.ColPtr[p.N], len(p.RowIdx))
	}
	for j := 0; j < p.N; j++ {
		col := p.Col(j)
		if len(col) == 0 || col[0] != int32(j) {
			return fmt.Errorf("sparse: column %d does not start at the diagonal", j)
		}
		for i := 1; i < len(col); i++ {
			if col[i] <= col[i-1] {
				return fmt.Errorf("sparse: column %d row indices not increasing", j)
			}
			if col[i] >= int32(p.N) {
				return fmt.Errorf("sparse: column %d row index %d out of range", j, col[i])
			}
		}
	}
	return nil
}

// BCSSTK14Params configures the synthetic structural-engineering matrix.
// The defaults approximate the Harwell-Boeing BCSSTK14 matrix (roof of
// the Omni Coliseum): a finite-element shell of ~301 nodes with 6 degrees
// of freedom each (N = 1806) and ~30k stored lower-triangle entries.
type BCSSTK14Params struct {
	// GridW x GridH is the node mesh (default 43 x 7 = 301 nodes).
	GridW, GridH int
	// DOF is the degrees of freedom per node (default 6).
	DOF int
	// Seed drives the random bracing structure.
	Seed int64
}

func (p BCSSTK14Params) withDefaults() BCSSTK14Params {
	if p.GridW == 0 {
		p.GridW = 17
	}
	if p.GridH == 0 {
		p.GridH = 17
	}
	if p.DOF == 0 {
		p.DOF = 6
	}
	return p
}

// ridgeNodes is the number of extra "ridge" nodes appended to the default
// 17x17 mesh so the default matrix has exactly 301 nodes = 1806 DOFs,
// matching BCSSTK14's order.
const ridgeNodes = 12

// GenerateBCSSTK14Like builds a symmetric pattern with the size and
// profile of BCSSTK14: a W x H node shell mesh with dense DOF x DOF
// coupling blocks between neighbouring nodes (shell elements couple a
// node to its grid neighbours, including diagonals) plus occasional
// bracing members, with the nodes numbered by nested dissection — the
// fill-reducing ordering a sparse solver would apply, which also gives
// the elimination tree its (limited) branching.
func GenerateBCSSTK14Like(p BCSSTK14Params) *Pattern {
	p = p.withDefaults()
	rng := synth.NewRNG(p.Seed)
	w, h := p.GridW, p.GridH
	gridNodes := w * h
	ridge := 0
	if p.GridW == 17 && p.GridH == 17 {
		ridge = ridgeNodes // default configuration: 289 + 12 = 301 nodes
	}
	nodes := gridNodes + ridge
	n := nodes * p.DOF

	// Nested-dissection numbering of the grid: recursively split the
	// longer dimension, numbering both halves before the separator. The
	// ridge appendage is numbered first (it is a leaf fringe).
	order := make([]int32, 0, nodes)
	for r := 0; r < ridge; r++ {
		order = append(order, int32(gridNodes+r))
	}
	var dissect func(x0, x1, y0, y1 int)
	dissect = func(x0, x1, y0, y1 int) {
		dx, dy := x1-x0, y1-y0
		if dx <= 0 || dy <= 0 {
			return
		}
		if dx <= 2 && dy <= 2 {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					order = append(order, int32(y*w+x))
				}
			}
			return
		}
		if dx >= dy {
			mid := (x0 + x1) / 2
			dissect(x0, mid, y0, y1)
			dissect(mid+1, x1, y0, y1)
			for y := y0; y < y1; y++ {
				order = append(order, int32(y*w+mid))
			}
		} else {
			mid := (y0 + y1) / 2
			dissect(x0, x1, y0, mid)
			dissect(x0, x1, mid+1, y1)
			for x := x0; x < x1; x++ {
				order = append(order, int32(mid*w+x))
			}
		}
	}
	dissect(0, w, 0, h)
	perm := make([]int32, nodes) // grid node -> new number
	for newIdx, node := range order {
		perm[node] = int32(newIdx)
	}

	// Node adjacency: shell-element neighbours plus sparse bracing.
	type edge struct{ a, b int32 }
	var edges []edge
	addEdge := func(n1, n2 int) {
		if n1 < 0 || n2 < 0 || n1 >= nodes || n2 >= nodes {
			return
		}
		edges = append(edges, edge{perm[n1], perm[n2]})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			node := y*w + x
			if x+1 < w {
				addEdge(node, node+1)
			}
			if y+1 < h {
				addEdge(node, node+w)
				if x+1 < w {
					addEdge(node, node+w+1)
				}
				if x > 0 {
					addEdge(node, node+w-1)
				}
			}
			_ = rng
		}
	}
	// Ridge appendage: a short strip of extra nodes along the top edge.
	for r := 0; r < ridge; r++ {
		node := gridNodes + r
		addEdge(node, (h-1)*w+r)   // down to the top row
		addEdge(node, (h-1)*w+r+1) // diagonal
		if r+1 < ridge {
			addEdge(node, node+1) // along the ridge
		}
	}

	// Expand node adjacency into dense DOF x DOF blocks.
	cols := make([][]int32, n)
	addBlock := func(nr, nc int32) {
		for dc := 0; dc < p.DOF; dc++ {
			c := int(nc)*p.DOF + dc
			for dr := 0; dr < p.DOF; dr++ {
				r := int(nr)*p.DOF + dr
				if r > c {
					cols[c] = append(cols[c], int32(r))
				} else if c > r {
					cols[r] = append(cols[r], int32(c))
				}
			}
		}
	}
	for node := 0; node < nodes; node++ {
		// Diagonal block: the node's own DOFs couple densely.
		addBlock(perm[node], perm[node])
	}
	for _, e := range edges {
		addBlock(e.a, e.b)
	}

	// Deduplicate, sort, prepend diagonals.
	colptr := make([]int32, n+1)
	var rows []int32
	for j := 0; j < n; j++ {
		c := cols[j]
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		out := []int32{int32(j)}
		for i, r := range c {
			if i > 0 && c[i-1] == r {
				continue
			}
			out = append(out, r)
		}
		colptr[j] = int32(len(rows))
		rows = append(rows, out...)
	}
	colptr[n] = int32(len(rows))
	return &Pattern{N: n, ColPtr: colptr, RowIdx: rows}
}

// EliminationTree returns parent[j] = the etree parent of column j, or -1
// for roots (Liu's algorithm with path compression): for each entry a_ij
// (i > j), processed row by row, climb from j to the root of its current
// subtree and attach it to i.
func EliminationTree(a *Pattern) []int32 {
	n := a.N
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		ancestor[j] = -1
	}
	// Row-wise adjacency of below-diagonal entries: for row i, the
	// columns j < i with a_ij != 0.
	rowAdj := make([][]int32, n)
	for j := 0; j < n; j++ {
		for _, r := range a.Col(j)[1:] {
			rowAdj[r] = append(rowAdj[r], int32(j))
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range rowAdj[i] {
			k := j
			for ancestor[k] != -1 && ancestor[k] != int32(i) {
				next := ancestor[k]
				ancestor[k] = int32(i) // path compression
				k = next
			}
			if ancestor[k] == -1 {
				ancestor[k] = int32(i)
				parent[k] = int32(i)
			}
		}
	}
	return parent
}

// SymbolicFactor computes the pattern of the Cholesky factor L given the
// matrix pattern and its elimination tree, by merging child structures
// up the tree (column-counts style, materialized).
func SymbolicFactor(a *Pattern, parent []int32) *Pattern {
	n := a.N
	// struct(L_j) = struct(A_j) ∪ (∪_{c: parent[c]=j} struct(L_c) \ {c}),
	// restricted to rows >= j.
	children := make([][]int32, n)
	for c := 0; c < n; c++ {
		if parent[c] >= 0 {
			children[parent[c]] = append(children[parent[c]], int32(c))
		}
	}
	lcols := make([][]int32, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		var rows []int32
		mark[j] = int32(j)
		rows = append(rows, int32(j))
		for _, r := range a.Col(j)[1:] {
			if mark[r] != int32(j) {
				mark[r] = int32(j)
				rows = append(rows, r)
			}
		}
		for _, c := range children[j] {
			for _, r := range lcols[c] {
				if r > int32(j) && mark[r] != int32(j) {
					mark[r] = int32(j)
					rows = append(rows, r)
				}
			}
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
		lcols[j] = rows
	}
	colptr := make([]int32, n+1)
	var all []int32
	for j := 0; j < n; j++ {
		colptr[j] = int32(len(all))
		all = append(all, lcols[j]...)
	}
	colptr[n] = int32(len(all))
	return &Pattern{N: n, ColPtr: colptr, RowIdx: all}
}

// Levels assigns each column its elimination-tree level: leaves are level
// 0 and each parent is one more than its highest child. Columns of one
// level are mutually independent and can be factored concurrently.
// It returns the per-column level and the number of levels.
func Levels(parent []int32) (level []int32, nLevels int) {
	n := len(parent)
	level = make([]int32, n)
	// Columns are numbered so parents are always higher than children
	// (etree property), so a single left-to-right pass suffices.
	for j := 0; j < n; j++ {
		level[j] = 0
	}
	for j := 0; j < n; j++ {
		if parent[j] >= 0 {
			if l := level[j] + 1; l > level[parent[j]] {
				level[parent[j]] = l
			}
		}
	}
	max := int32(0)
	for _, l := range level {
		if l > max {
			max = l
		}
	}
	return level, int(max) + 1
}

// FactorFlops returns the floating-point operation count of the numeric
// factorization: sum over columns of |L(:,j)|^2 (cmod) plus |L(:,j)|
// (cdiv).
func FactorFlops(l *Pattern) int64 {
	var f int64
	for j := 0; j < l.N; j++ {
		c := int64(len(l.Col(j)))
		f += c*c + c
	}
	return f
}

// Parallelism returns total work divided by critical-path work, using
// per-column cost |L(:,j)|^2 and etree dependencies — the upper bound on
// the speedup any schedule can achieve.
func Parallelism(l *Pattern, parent []int32) float64 {
	n := l.N
	cost := make([]float64, n)
	cp := make([]float64, n) // critical path ending at column j
	var total, maxCP float64
	for j := 0; j < n; j++ {
		c := float64(len(l.Col(j)))
		cost[j] = c * c
		total += cost[j]
	}
	for j := 0; j < n; j++ {
		if cp[j] < cost[j] {
			cp[j] = cost[j]
		}
		if parent[j] >= 0 {
			if v := cp[j] + cost[parent[j]]; v > cp[parent[j]] {
				cp[parent[j]] = v
			}
		}
		if cp[j] > maxCP {
			maxCP = cp[j]
		}
	}
	if maxCP == 0 {
		return 0
	}
	return total / maxCP
}
