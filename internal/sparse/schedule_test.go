package sparse

import (
	"testing"
)

func factorDefault(t testing.TB) (*Pattern, []Supernode, []int32) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 1})
	parent := EliminationTree(a)
	l := SymbolicFactor(a, parent)
	sns, colSn := FindSupernodes(l, 0)
	t.Logf("supernodes: %d (avg width %.1f)", len(sns), float64(l.N)/float64(len(sns)))
	return l, sns, colSn
}

func TestFindSupernodesCoverAllColumns(t *testing.T) {
	l, sns, colSn := factorDefault(t)
	covered := 0
	for i, s := range sns {
		if s.First >= s.Last {
			t.Fatalf("supernode %d empty", i)
		}
		if i > 0 && s.First != sns[i-1].Last {
			t.Fatalf("supernode %d not contiguous", i)
		}
		covered += s.Width()
		for c := s.First; c < s.Last; c++ {
			if colSn[c] != int32(i) {
				t.Fatalf("column %d mapped to supernode %d, want %d", c, colSn[c], i)
			}
		}
	}
	if covered != l.N {
		t.Errorf("supernodes cover %d columns, want %d", covered, l.N)
	}
}

func TestSupernodesAreNested(t *testing.T) {
	l, sns, _ := factorDefault(t)
	for _, s := range sns {
		for j := int(s.First) + 1; j < int(s.Last); j++ {
			if !nested(l, j-1, j) {
				t.Fatalf("columns %d,%d inside one supernode are not nested", j-1, j)
			}
		}
	}
}

func TestFindSupernodesWidthCap(t *testing.T) {
	l, _, _ := factorDefault(t)
	sns, _ := FindSupernodes(l, 4)
	for _, s := range sns {
		if s.Width() > 4 {
			t.Fatalf("supernode width %d exceeds the cap", s.Width())
		}
	}
}

func TestBuildOpsDAG(t *testing.T) {
	l, sns, colSn := factorDefault(t)
	ops, succ, indeg := BuildOps(l, sns, colSn)
	if len(ops) != len(succ) || len(ops) != len(indeg) {
		t.Fatal("ops/succ/indeg length mismatch")
	}
	nSF := 0
	for _, op := range ops {
		if op.Cost <= 0 {
			t.Fatalf("op %+v has non-positive cost", op)
		}
		if op.Kind == SFactor {
			nSF++
			if op.K != -1 {
				t.Fatal("SFactor with a source")
			}
		} else if int(op.J) >= len(sns) || int(op.K) >= len(sns) {
			t.Fatalf("SMod references bad supernodes: %+v", op)
		}
	}
	if nSF != len(sns) {
		t.Errorf("%d SFactor ops, want %d", nSF, len(sns))
	}
}

func TestListScheduleValid(t *testing.T) {
	l, sns, colSn := factorDefault(t)
	ops, succ, indeg := BuildOps(l, sns, colSn)
	for _, procs := range []int{1, 4, 32} {
		s, err := ListSchedule(ops, succ, indeg, len(sns), procs)
		if err != nil {
			t.Fatal(err)
		}
		if s.Ops != len(ops) {
			t.Fatalf("procs=%d: scheduled %d of %d ops", procs, s.Ops, len(ops))
		}
		// Per-processor sequences must be non-overlapping and ordered.
		for p, seq := range s.PerProc {
			var prev int64
			for _, so := range seq {
				if so.Start < prev {
					t.Fatalf("procs=%d proc %d: op starts at %d before previous end %d",
						procs, p, so.Start, prev)
				}
				if so.End != so.Start+so.Cost {
					t.Fatalf("bad op duration: %+v", so)
				}
				prev = so.End
			}
		}
		if s.Makespan <= 0 || s.TotalWork <= 0 {
			t.Fatalf("degenerate schedule: %+v", s)
		}
	}
}

func TestScheduleSerializesTargets(t *testing.T) {
	l, sns, colSn := factorDefault(t)
	ops, succ, indeg := BuildOps(l, sns, colSn)
	s, err := ListSchedule(ops, succ, indeg, len(sns), 8)
	if err != nil {
		t.Fatal(err)
	}
	// No two ops with the same target J may overlap in time.
	type span struct{ s, e int64 }
	byTarget := map[int32][]span{}
	for _, seq := range s.PerProc {
		for _, so := range seq {
			byTarget[so.J] = append(byTarget[so.J], span{so.Start, so.End})
		}
	}
	for j, spans := range byTarget {
		for a := 0; a < len(spans); a++ {
			for b := a + 1; b < len(spans); b++ {
				if spans[a].s < spans[b].e && spans[b].s < spans[a].e {
					t.Fatalf("target %d: overlapping ops %v and %v", j, spans[a], spans[b])
				}
			}
		}
	}
}

func TestScheduleSpeedupSaturates(t *testing.T) {
	// The paper's Cholesky observation: BCSSTK14 has limited concurrency;
	// 32 processors achieve only ~3-3.5x. Our schedule must show the same
	// saturation: near 1 on one processor, capped well below 32 on 32.
	l, sns, colSn := factorDefault(t)
	ops, succ, indeg := BuildOps(l, sns, colSn)

	s1, err := ListSchedule(ops, succ, indeg, len(sns), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp := s1.Speedup(); sp < 0.99 || sp > 1.01 {
		t.Errorf("1-processor schedule speedup = %.2f, want 1.0", sp)
	}
	s32, err := ListSchedule(ops, succ, indeg, len(sns), 32)
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(s1.Makespan) / float64(s32.Makespan)
	t.Logf("32-processor schedule speedup = %.2f", sp)
	if sp < 2.0 || sp > 8.0 {
		t.Errorf("32-processor speedup = %.2f, want limited concurrency (2-8)", sp)
	}
	s4, err := ListSchedule(ops, succ, indeg, len(sns), 4)
	if err != nil {
		t.Fatal(err)
	}
	sp4 := float64(s1.Makespan) / float64(s4.Makespan)
	if sp4 <= 1.2 {
		t.Errorf("4-processor speedup = %.2f, want > 1.2", sp4)
	}
}

func TestListScheduleRejectsBadProcs(t *testing.T) {
	if _, err := ListSchedule(nil, nil, nil, 0, 0); err == nil {
		t.Error("accepted 0 processors")
	}
}
