package sparse

// Supernode detection: maximal ranges of consecutive columns of L with
// nested structure (struct(L_{j+1}) = struct(L_j) \ {j}), the unit of
// work in supernodal factorization (the SPLASH Cholesky granularity).

// Supernode is a half-open column range [First, Last) of the factor.
type Supernode struct {
	First, Last int32
}

// Width returns the number of columns in the supernode.
func (s Supernode) Width() int { return int(s.Last - s.First) }

// FindSupernodes partitions the columns of L into supernodes, capping
// width at maxWidth (0 = 32). It returns the supernodes in column order
// plus a map from column to its supernode index.
func FindSupernodes(l *Pattern, maxWidth int) ([]Supernode, []int32) {
	if maxWidth <= 0 {
		maxWidth = 32
	}
	n := l.N
	var sns []Supernode
	colSn := make([]int32, n)
	j := 0
	for j < n {
		first := j
		j++
		for j < n && j-first < maxWidth && nested(l, j-1, j) {
			j++
		}
		idx := int32(len(sns))
		sns = append(sns, Supernode{First: int32(first), Last: int32(j)})
		for c := first; c < j; c++ {
			colSn[c] = idx
		}
	}
	return sns, colSn
}

// nested reports whether struct(L_{j1}) = struct(L_j0) \ {j0}, the
// supernode-merge condition for consecutive columns.
func nested(l *Pattern, j0, j1 int) bool {
	a := l.Col(j0)
	b := l.Col(j1)
	if len(a) != len(b)+1 {
		return false
	}
	// a = [j0, j1?, rest...]; b = [j1, rest...]
	if len(a) < 2 || a[1] != int32(j1) {
		return false
	}
	for i := 1; i < len(b); i++ {
		if a[i+1] != b[i] {
			return false
		}
	}
	return true
}

// SnFlops returns the dense internal factorization cost of a supernode:
// its columns' squared lengths (cdiv + internal cmods).
func SnFlops(l *Pattern, s Supernode) int64 {
	var f int64
	for j := s.First; j < s.Last; j++ {
		c := int64(len(l.Col(int(j))))
		f += c * c / 2
	}
	return f
}
