package sparse

import (
	"container/heap"
	"fmt"
)

// Parallel supernodal fan-out schedule. The factorization is decomposed
// into operations at the granularity the SPLASH Cholesky uses:
//
//   - SFactor(J): dense internal factorization of supernode J;
//   - SMod(J, K): update of supernode J by completed supernode K.
//
// SMod(J,K) requires SFactor(K); SFactor(J) requires every SMod(J,·);
// SMods with the same target serialize (a per-supernode lock protects the
// target columns). An earliest-task-first list scheduler maps the DAG
// onto P processors; the resulting per-processor operation sequences —
// including the waits — become the workload trace. This pipelined
// schedule is what lets sparse Cholesky exceed its elimination-tree
// parallelism, and its limits (long separator chains, lock serialization)
// are what cap BCSSTK14's speedup near 3-3.5 in the paper.

// OpKind distinguishes schedule operations.
type OpKind uint8

const (
	// SMod updates target supernode J using source supernode K.
	SMod OpKind = iota
	// SFactor factors supernode J internally.
	SFactor
)

// Op is one schedulable operation.
type Op struct {
	Kind OpKind
	// J is the target supernode; K the source (SMod only).
	J, K int32
	// Cost is the estimated cycle cost (flop-proportional).
	Cost int64
}

// ScheduledOp is an Op placed on a processor timeline.
type ScheduledOp struct {
	Op
	Start, End int64
}

// Schedule is the result of list-scheduling the factorization.
type Schedule struct {
	// PerProc[p] is processor p's operation sequence in start order.
	PerProc [][]ScheduledOp
	// Makespan is the completion time of the last operation.
	Makespan int64
	// TotalWork is the summed cost of all operations.
	TotalWork int64
	// Ops is the total operation count.
	Ops int
}

// Speedup returns TotalWork/Makespan — the concurrency the schedule
// actually achieved.
func (s *Schedule) Speedup() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.TotalWork) / float64(s.Makespan)
}

// BuildOps constructs the fan-out operation DAG for factor pattern l and
// its supernode partition. It returns the ops plus, for each op, the list
// of dependent op indices, and the in-degree of each op.
func BuildOps(l *Pattern, sns []Supernode, colSn []int32) (ops []Op, succ [][]int32, indeg []int32) {
	// Index helpers: op id for SFactor(J) is sfId[J]; SMod ids appended.
	sfID := make([]int32, len(sns))
	for j := range sns {
		sfID[j] = int32(len(ops))
		ops = append(ops, Op{Kind: SFactor, J: int32(j), K: -1, Cost: SnFlops(l, sns[j])})
	}
	succ = make([][]int32, len(ops), len(ops)*4)
	indeg = make([]int32, len(ops), len(ops)*4)

	for k := range sns {
		K := sns[k]
		// Below-diagonal rows of K: from its first column, rows >= Last.
		col := l.Col(int(K.First))
		var below []int32
		for _, r := range col {
			if r >= K.Last {
				below = append(below, r)
			}
		}
		wK := int64(K.Width())
		// Group rows by target supernode (rows are sorted).
		i := 0
		for i < len(below) {
			tj := colSn[below[i]]
			cnt := int64(0)
			for i < len(below) && colSn[below[i]] == tj {
				cnt++
				i++
			}
			tail := int64(len(below)) - (int64(i) - cnt) // rows from this target downwards
			op := Op{Kind: SMod, J: tj, K: int32(k), Cost: wK * cnt * (tail + 2)}
			id := int32(len(ops))
			ops = append(ops, op)
			succ = append(succ, nil)
			indeg = append(indeg, 0)
			// SFactor(K) -> SMod(J,K)
			succ[sfID[k]] = append(succ[sfID[k]], id)
			indeg[id]++
			// SMod(J,K) -> SFactor(J)
			succ[id] = append(succ[id], sfID[tj])
			indeg[sfID[tj]]++
		}
	}
	return ops, succ, indeg
}

// opEvent is a heap entry for the scheduler's ready queue.
type opEvent struct {
	ready    int64
	priority int64 // bottom level: longer = more urgent
	id       int32
}

type opHeap []opEvent

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(a, b int) bool {
	if h[a].ready != h[b].ready {
		return h[a].ready < h[b].ready
	}
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].id < h[b].id
}
func (h opHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *opHeap) Push(x interface{}) { *h = append(*h, x.(opEvent)) }
func (h *opHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ListSchedule maps the operation DAG onto procs processors with an
// earliest-ready, critical-path-priority list scheduler, honoring the
// per-target-supernode lock.
func ListSchedule(ops []Op, succ [][]int32, indeg []int32, nSupernodes, procs int) (*Schedule, error) {
	if procs < 1 {
		return nil, fmt.Errorf("sparse: %d processors", procs)
	}
	n := len(ops)

	// Bottom levels (critical path to the sinks) for priorities, computed
	// in reverse topological order via Kahn on the reversed DAG... the
	// DAG is small, so a simple DP over a topological order suffices.
	topo := make([]int32, 0, n)
	deg := make([]int32, n)
	copy(deg, indeg)
	var stack []int32
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		topo = append(topo, id)
		for _, s := range succ[id] {
			deg[s]--
			if deg[s] == 0 {
				stack = append(stack, s)
			}
		}
	}
	if len(topo) != n {
		return nil, fmt.Errorf("sparse: operation DAG has a cycle (%d of %d ordered)", len(topo), n)
	}
	bottom := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		id := topo[i]
		var best int64
		for _, s := range succ[id] {
			if bottom[s] > best {
				best = bottom[s]
			}
		}
		bottom[id] = best + ops[id].Cost
	}

	// Event-driven list scheduling.
	readyAt := make([]int64, n)
	deg = make([]int32, n)
	copy(deg, indeg)
	h := &opHeap{}
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			heap.Push(h, opEvent{ready: 0, priority: bottom[i], id: int32(i)})
		}
	}
	procFree := make([]int64, procs)
	lockFree := make([]int64, nSupernodes)
	sched := &Schedule{PerProc: make([][]ScheduledOp, procs)}

	for h.Len() > 0 {
		ev := heap.Pop(h).(opEvent)
		op := ops[ev.id]
		// Earliest-available processor; ties to the lowest index.
		p := 0
		for q := 1; q < procs; q++ {
			if procFree[q] < procFree[p] {
				p = q
			}
		}
		start := ev.ready
		if procFree[p] > start {
			start = procFree[p]
		}
		if lf := lockFree[op.J]; lf > start {
			start = lf
		}
		end := start + op.Cost
		procFree[p] = end
		lockFree[op.J] = end
		sched.PerProc[p] = append(sched.PerProc[p], ScheduledOp{Op: op, Start: start, End: end})
		sched.TotalWork += op.Cost
		sched.Ops++
		if end > sched.Makespan {
			sched.Makespan = end
		}
		for _, s := range succ[ev.id] {
			if readyAt[s] < end {
				readyAt[s] = end
			}
			deg[s]--
			if deg[s] == 0 {
				heap.Push(h, opEvent{ready: readyAt[s], priority: bottom[s], id: s})
			}
		}
	}
	return sched, nil
}
