package sparse

import (
	"fmt"
	"math"

	"sccsim/internal/synth"
)

// Numeric factorization. The trace generator needs only the factor's
// structure and schedule, but the library implements the numeric
// algorithm too so the Cholesky substrate is a real solver: build an SPD
// matrix on a pattern, factor it, and solve systems with it. The tests
// verify L·Lᵀ = A and A·x = b round trips.

// Matrix is a symmetric positive-definite matrix stored on a lower-
// triangle Pattern (column-major values aligned with Pattern.RowIdx).
type Matrix struct {
	Pat *Pattern
	// Val[k] is the value for the entry at Pattern.RowIdx[k].
	Val []float64
}

// NewSPD builds a symmetric positive-definite matrix on the pattern:
// small negative off-diagonal couplings with a diagonally-dominant
// diagonal (a standard finite-element-like stiffness surrogate).
func NewSPD(p *Pattern, seed int64) *Matrix {
	rng := synth.NewRNG(seed)
	m := &Matrix{Pat: p, Val: make([]float64, p.Nnz())}
	rowAbs := make([]float64, p.N) // sum of |off-diag| per row/column
	for j := 0; j < p.N; j++ {
		start := p.ColPtr[j]
		for k := start + 1; k < p.ColPtr[j+1]; k++ {
			v := -(0.2 + 0.8*rng.Float64())
			m.Val[k] = v
			rowAbs[j] += math.Abs(v)
			rowAbs[p.RowIdx[k]] += math.Abs(v)
		}
	}
	for j := 0; j < p.N; j++ {
		m.Val[p.ColPtr[j]] = rowAbs[j] + 1 + rng.Float64()
	}
	return m
}

// At returns A[i][j] for i >= j (0 when not stored).
func (m *Matrix) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	for k := m.Pat.ColPtr[j]; k < m.Pat.ColPtr[j+1]; k++ {
		if int(m.Pat.RowIdx[k]) == i {
			return m.Val[k]
		}
	}
	return 0
}

// Factor is a computed sparse Cholesky factor L (A = L·Lᵀ), stored on
// the filled pattern from SymbolicFactor.
type Factor struct {
	Pat *Pattern
	Val []float64
}

// Factorize computes the numeric Cholesky factorization of a on the
// filled pattern lpat (which must come from SymbolicFactor of a's
// pattern). It is a left-looking column algorithm using the factor's row
// structure. It fails if the matrix is not positive definite.
func Factorize(a *Matrix, lpat *Pattern) (*Factor, error) {
	n := lpat.N
	f := &Factor{Pat: lpat, Val: make([]float64, lpat.Nnz())}

	// Row lists of L: for each row i, the (column, entryIndex) pairs
	// with i in struct(L_col), col < i. Built once up front.
	type rref struct{ col, idx int32 }
	rows := make([][]rref, n)
	for j := 0; j < n; j++ {
		for k := lpat.ColPtr[j] + 1; k < lpat.ColPtr[j+1]; k++ {
			i := lpat.RowIdx[k]
			rows[i] = append(rows[i], rref{col: int32(j), idx: k})
		}
	}

	// Dense scatter workspace for the current column.
	w := make([]float64, n)
	pos := make([]int32, n) // row -> entry index within current column
	for i := range pos {
		pos[i] = -1
	}

	for j := 0; j < n; j++ {
		cs, ce := lpat.ColPtr[j], lpat.ColPtr[j+1]
		// Scatter A(:,j) into w.
		for k := cs; k < ce; k++ {
			i := lpat.RowIdx[k]
			w[i] = a.At(int(i), j)
			pos[i] = k
		}
		// cmod: subtract the contributions of every column k < j with
		// L[j,k] != 0 — exactly the row-list entries of row j.
		for _, r := range rows[j] {
			ljk := f.Val[r.idx]
			if ljk == 0 {
				continue
			}
			// Walk column r.col from the entry at row j downwards.
			for k := r.idx; k < lpat.ColPtr[r.col+1]; k++ {
				i := lpat.RowIdx[k]
				if pos[i] >= 0 {
					w[i] -= ljk * f.Val[k]
				}
			}
		}
		// cdiv: take the square root and scale the column.
		d := w[j]
		if d <= 0 {
			return nil, fmt.Errorf("sparse: matrix not positive definite at column %d (pivot %g)", j, d)
		}
		d = math.Sqrt(d)
		f.Val[cs] = d
		for k := cs + 1; k < ce; k++ {
			f.Val[k] = w[lpat.RowIdx[k]] / d
		}
		// Clear the workspace.
		for k := cs; k < ce; k++ {
			i := lpat.RowIdx[k]
			w[i] = 0
			pos[i] = -1
		}
	}
	return f, nil
}

// MulVec computes y = A·x using the symmetric lower-triangle storage.
func (m *Matrix) MulVec(x []float64) []float64 {
	n := m.Pat.N
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := m.Pat.ColPtr[j]; k < m.Pat.ColPtr[j+1]; k++ {
			i := int(m.Pat.RowIdx[k])
			y[i] += m.Val[k] * x[j]
			if i != j {
				y[j] += m.Val[k] * x[i]
			}
		}
	}
	return y
}

// Solve solves A·x = b given the factor: forward substitution with L,
// then backward substitution with Lᵀ.
func (f *Factor) Solve(b []float64) []float64 {
	n := f.Pat.N
	x := make([]float64, n)
	copy(x, b)
	// L·y = b (forward).
	for j := 0; j < n; j++ {
		cs, ce := f.Pat.ColPtr[j], f.Pat.ColPtr[j+1]
		x[j] /= f.Val[cs]
		for k := cs + 1; k < ce; k++ {
			x[f.Pat.RowIdx[k]] -= f.Val[k] * x[j]
		}
	}
	// Lᵀ·x = y (backward).
	for j := n - 1; j >= 0; j-- {
		cs, ce := f.Pat.ColPtr[j], f.Pat.ColPtr[j+1]
		for k := cs + 1; k < ce; k++ {
			x[j] -= f.Val[k] * x[f.Pat.RowIdx[k]]
		}
		x[j] /= f.Val[cs]
	}
	return x
}
