package sparse

import (
	"math"
	"testing"

	"sccsim/internal/synth"
)

func setupNumeric(t testing.TB, w, h int, seed int64) (*Matrix, *Factor) {
	t.Helper()
	a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: w, GridH: h, Seed: seed})
	m := NewSPD(a, seed)
	l := SymbolicFactor(a, EliminationTree(a))
	f, err := Factorize(m, l)
	if err != nil {
		t.Fatal(err)
	}
	return m, f
}

func TestFactorizeReconstructsA(t *testing.T) {
	m, f := setupNumeric(t, 6, 6, 11)
	n := m.Pat.N
	// Check (L·Lᵀ)[i][j] == A[i][j] on every stored entry of A.
	lv := make(map[[2]int32]float64, f.Pat.Nnz())
	for j := 0; j < n; j++ {
		for k := f.Pat.ColPtr[j]; k < f.Pat.ColPtr[j+1]; k++ {
			lv[[2]int32{f.Pat.RowIdx[k], int32(j)}] = f.Val[k]
		}
	}
	dot := func(i, j int) float64 {
		// (L Lᵀ)[i][j] = sum_k L[i][k] L[j][k].
		var s float64
		for k := 0; k <= j; k++ {
			s += lv[[2]int32{int32(i), int32(k)}] * lv[[2]int32{int32(j), int32(k)}]
		}
		return s
	}
	for j := 0; j < n; j++ {
		for k := m.Pat.ColPtr[j]; k < m.Pat.ColPtr[j+1]; k++ {
			i := int(m.Pat.RowIdx[k])
			want := m.Val[k]
			got := dot(i, j)
			if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("(LL^T)[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestSolveRoundTrip(t *testing.T) {
	m, f := setupNumeric(t, 10, 8, 13)
	n := m.Pat.N
	rng := synth.NewRNG(99)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := m.MulVec(x)
	got := f.Solve(b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
			t.Fatalf("solve[%d] = %g, want %g", i, got[i], x[i])
		}
	}
}

func TestSolveDefaultScaleMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale numeric factorization in -short mode")
	}
	// The full BCSSTK14-scale system (N=1806) factors and solves.
	m, f := setupNumeric(t, 0, 0, 1)
	n := m.Pat.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := f.Solve(b)
	// Residual ||Ax - b||_inf must be tiny relative to ||b||.
	r := m.MulVec(x)
	worst := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("residual = %g", worst)
	}
}

func TestFactorizeRejectsIndefinite(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: 5, GridH: 5, Seed: 3})
	m := NewSPD(a, 3)
	// Break positive definiteness.
	m.Val[m.Pat.ColPtr[2]] = -5
	l := SymbolicFactor(a, EliminationTree(a))
	if _, err := Factorize(m, l); err == nil {
		t.Error("factorized an indefinite matrix")
	}
}

func TestMatrixAt(t *testing.T) {
	a := tiny()
	m := NewSPD(a, 1)
	if m.At(0, 0) <= 0 {
		t.Error("diagonal not positive")
	}
	if m.At(1, 0) != m.At(0, 1) {
		t.Error("At not symmetric")
	}
	if m.At(4, 0) != 0 {
		t.Error("missing entry not zero")
	}
}

func TestNewSPDIsDiagonallyDominant(t *testing.T) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{GridW: 8, GridH: 6, Seed: 5})
	m := NewSPD(a, 5)
	n := a.N
	off := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j] + 1; k < a.ColPtr[j+1]; k++ {
			v := math.Abs(m.Val[k])
			off[j] += v
			off[a.RowIdx[k]] += v
		}
	}
	for j := 0; j < n; j++ {
		if m.At(j, j) <= off[j] {
			t.Fatalf("row %d not diagonally dominant: %g <= %g", j, m.At(j, j), off[j])
		}
	}
}

func BenchmarkFactorizeBCSSTK14(b *testing.B) {
	a := GenerateBCSSTK14Like(BCSSTK14Params{Seed: 1})
	m := NewSPD(a, 1)
	l := SymbolicFactor(a, EliminationTree(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(m, l); err != nil {
			b.Fatal(err)
		}
	}
}
