// Package rdmodel is the analytic reuse-distance cache model behind the
// facade's "analytic" backend: one pass over a workload's compiled
// reference trace produces per-cluster (and per-processor)
// reuse-distance histograms, from which the predicted SCC miss ratio —
// and a derived execution-time estimate — of *every* cache size on the
// paper's grid follows in microseconds (see Predict). The approach is
// the shared-cache reuse-distance model of Barai, Chapman et al.
// ("Modeling Shared Cache Performance of OpenMP Programs using Reuse
// Distance"): the processors of a cluster share one SCC, so the model
// measures stack distances over the cluster's *merged* reference
// stream, interleaving the per-processor streams in the same
// virtual-time order the exact simulator replays them in.
//
// The package deliberately depends only on the trace substrate (mem,
// trace, sysmodel) — not on the simulator — so the exact and analytic
// backends share inputs but no machinery, which is what makes the
// verify cross-validator (internal/verify) a meaningful check.
//
// Model accuracy contract: distances below the tracker cap are exact;
// the model's error against the exact simulator comes from (a) the
// statistical direct-mapped conflict model, (b) ignoring coherence
// invalidations and lock spins, and (c) the stall-free interleaving
// approximation. The measured error bounds live in the facade's
// cross-validation defaults (sccsim.DefaultCrossBounds) and are
// asserted by `make verify-analytic`.
package rdmodel

import (
	"fmt"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// DefaultCap returns the tracker cap used for the paper's grid: the
// line count of the largest SCC in the sweep. Distances at or above it
// are certain misses at every swept size, so nothing larger needs exact
// tracking.
func DefaultCap() int {
	return sysmodel.SCCSizes[len(sysmodel.SCCSizes)-1] / sysmodel.LineSize
}

// Hist is a reuse-distance histogram at cache-line granularity, split
// by access kind. Read[d] / Write[d] count accesses whose distance is
// exactly d (d < Cap); FarReads/FarWrites count accesses with distance
// >= Cap; ColdReads/ColdWrites count first-ever touches (compulsory
// misses at any size).
type Hist struct {
	Cap        int
	Read       []uint64
	Write      []uint64
	FarReads   uint64
	FarWrites  uint64
	ColdReads  uint64
	ColdWrites uint64
}

func newHist(capLines int) Hist {
	return Hist{Cap: capLines, Read: make([]uint64, capLines), Write: make([]uint64, capLines)}
}

// Reads returns the total read-kind accesses in the histogram.
func (h *Hist) Reads() uint64 {
	var n uint64
	for _, v := range h.Read {
		n += v
	}
	return n + h.FarReads + h.ColdReads
}

// Writes returns the total write-kind accesses in the histogram.
func (h *Hist) Writes() uint64 {
	var n uint64
	for _, v := range h.Write {
		n += v
	}
	return n + h.FarWrites + h.ColdWrites
}

func (h *Hist) add(d int, write bool) {
	switch {
	case d == distCold && write:
		h.ColdWrites++
	case d == distCold:
		h.ColdReads++
	case d == distFar && write:
		h.FarWrites++
	case d == distFar:
		h.FarReads++
	case write:
		h.Write[d]++
	default:
		h.Read[d]++
	}
}

// Profile is one workload trace's complete reuse-distance profile for a
// fixed system shape (processor count and cluster count): everything
// Predict needs to estimate any SCC size's miss ratio and execution
// time. Building it is the expensive step — O(refs · log cap) — and is
// done exactly once per (workload, procs, clusters, scale) by the
// explorer's profile cache.
type Profile struct {
	// Name mirrors the source trace; Procs and Clusters fix the system
	// shape the profile was measured for (histograms depend on how
	// streams merge, so a profile is not reusable across shapes).
	Name     string
	Procs    int
	Clusters int
	// Cap is the tracker cap shared by every histogram.
	Cap int
	// Refs is the total memory references (excluding Idle), matching the
	// exact simulator's Result.Refs accounting.
	Refs uint64
	// Cluster[i] is cluster i's histogram over its merged stream — the
	// shared-SCC view the miss prediction uses.
	Cluster []Hist
	// PerProc[p] is processor p's (or, for scheduled profiles, process
	// p's) private-stream histogram — the per-processor locality view,
	// exposed for diagnostics and model studies.
	PerProc []Hist
	// PhaseNames, Issue and ReadRefs feed the execution-time estimate:
	// Issue[i][p] is processor p's stall-free issue cycles in phase i
	// (compute gaps plus one cycle per cache access), ReadRefs[i][p] its
	// read-kind accesses there.
	PhaseNames []string
	Issue      [][]uint64
	ReadRefs   [][]uint64
}

// accessesOf maps a trace record to its cache accesses, mirroring the
// exact simulator: a Lock is an acquire read followed by the lock
// write, an Unlock a single write. (Lock spin re-reads depend on
// contention timing and are deliberately not modeled.)
func accessesOf(k mem.Kind) (reads, writes int) {
	switch k {
	case mem.Read:
		return 1, 0
	case mem.Write:
		return 0, 1
	case mem.Lock:
		return 1, 1
	case mem.Unlock:
		return 0, 1
	}
	return 0, 0
}

// BuildProfile measures a parallel workload's reuse-distance profile
// for a clusters-way system: processors are assigned to clusters in
// contiguous blocks (processor p to cluster p/(procs/clusters), exactly
// as the simulator wires them) and each cluster's histogram is taken
// over its processors' streams merged in per-processor virtual-time
// order — the stall-free approximation of the simulator's replay
// interleaving. capLines caps tracked distances (see DefaultCap).
func BuildProfile(c *trace.Compiled, clusters, capLines int) (*Profile, error) {
	if clusters < 1 || c.Procs%clusters != 0 {
		return nil, fmt.Errorf("rdmodel: %d processors not divisible into %d clusters", c.Procs, clusters)
	}
	ppc := c.Procs / clusters
	p := &Profile{
		Name: c.Name, Procs: c.Procs, Clusters: clusters, Cap: capLines,
		Refs:       c.Refs(),
		Cluster:    make([]Hist, clusters),
		PerProc:    make([]Hist, c.Procs),
		PhaseNames: append([]string(nil), c.PhaseNames...),
		Issue:      make([][]uint64, len(c.Streams)),
		ReadRefs:   make([][]uint64, len(c.Streams)),
	}
	clTrack := make([]*tracker, clusters)
	for i := range clTrack {
		clTrack[i] = newTracker(capLines)
		p.Cluster[i] = newHist(capLines)
	}
	prTrack := make([]*tracker, c.Procs)
	for i := range prTrack {
		prTrack[i] = newTracker(capLines)
		p.PerProc[i] = newHist(capLines)
	}

	pos := make([]int, c.Procs)
	clk := make([]uint64, c.Procs)
	for phase, streams := range c.Streams {
		p.Issue[phase] = make([]uint64, c.Procs)
		p.ReadRefs[phase] = make([]uint64, c.Procs)
		// Phase barriers align the processors, so each phase merges from
		// a common origin.
		for pr := range pos {
			pos[pr], clk[pr] = 0, 0
		}
		for {
			// Next reference in virtual-time order: the unfinished
			// processor with the smallest clock (ties to the lowest id),
			// mirroring the replay scheduler's ordering.
			pr := -1
			for q := 0; q < c.Procs; q++ {
				if pos[q] < len(streams[q]) && (pr < 0 || clk[q] < clk[pr]) {
					pr = q
				}
			}
			if pr < 0 {
				break
			}
			r := streams[pr][pos[pr]]
			pos[pr]++
			clk[pr] += uint64(r.Gap)
			reads, writes := accessesOf(r.Kind)
			if reads+writes == 0 {
				continue
			}
			line := sysmodel.LineIndex(r.Addr)
			cl := pr / ppc
			for i := 0; i < reads+writes; i++ {
				write := i >= reads
				p.Cluster[cl].add(clTrack[cl].access(line), write)
				p.PerProc[pr].add(prTrack[pr].access(line), write)
			}
			clk[pr] += uint64(reads + writes)
			p.ReadRefs[phase][pr] += uint64(reads)
		}
		copy(p.Issue[phase], clk)
	}
	return p, nil
}

// BuildScheduledProfile measures the multiprogramming workload's
// profile: the processes' streams are interleaved by a replica of the
// simulator's round-robin scheduler (initial assignment in process
// order, a global FIFO ready queue, preemption every quantum issue
// cycles, idle slots picking up preempted processes immediately)
// running in stall-free issue time, and the single shared SCC sees the
// merged stream. PerProc holds one histogram per *process* — the
// private locality view is per program, not per time-sliced processor.
func BuildScheduledProfile(name string, processes [][]mem.Ref, slots int, quantum uint64, capLines int) (*Profile, error) {
	if slots < 1 || len(processes) == 0 || quantum == 0 {
		return nil, fmt.Errorf("rdmodel: bad schedule shape (%d slots, %d processes, quantum %d)",
			slots, len(processes), quantum)
	}
	p := &Profile{
		Name: name, Procs: slots, Clusters: 1, Cap: capLines,
		Cluster:    []Hist{newHist(capLines)},
		PerProc:    make([]Hist, len(processes)),
		PhaseNames: []string{"scheduled"},
		Issue:      [][]uint64{make([]uint64, slots)},
		ReadRefs:   [][]uint64{make([]uint64, slots)},
	}
	shared := newTracker(capLines)
	prTrack := make([]*tracker, len(processes))
	for i := range prTrack {
		prTrack[i] = newTracker(capLines)
		p.PerProc[i] = newHist(capLines)
	}

	pos := make([]int, len(processes))
	queue := make([]int, 0, len(processes))
	current := make([]int, slots)
	quantumEnd := make([]uint64, slots)
	clk := make([]uint64, slots)
	idle := make([]bool, slots)
	for s := 0; s < slots; s++ {
		if s < len(processes) {
			current[s] = s
			quantumEnd[s] = quantum
		} else {
			current[s] = -1
			idle[s] = true
		}
	}
	for i := slots; i < len(processes); i++ {
		queue = append(queue, i)
	}

	wake := func(t uint64) {
		for len(queue) > 0 {
			victim := -1
			for s := 0; s < slots; s++ {
				if idle[s] && (victim < 0 || clk[s] < clk[victim]) {
					victim = s
				}
			}
			if victim < 0 {
				return
			}
			pid := queue[0]
			queue = queue[1:]
			idle[victim] = false
			if clk[victim] < t {
				clk[victim] = t
			}
			current[victim] = pid
			quantumEnd[victim] = clk[victim] + quantum
		}
	}

	for {
		s := -1
		for q := 0; q < slots; q++ {
			if current[q] >= 0 && (s < 0 || clk[q] < clk[s]) {
				s = q
			}
		}
		if s < 0 {
			break
		}
		pid := current[s]
		st := processes[pid]
		if pos[pid] >= len(st) {
			if len(queue) > 0 {
				current[s] = queue[0]
				queue = queue[1:]
				quantumEnd[s] = clk[s] + quantum
			} else {
				current[s] = -1
				idle[s] = true
			}
			continue
		}
		if clk[s] >= quantumEnd[s] && (len(queue) > 0 || anyIdle(idle)) {
			queue = append(queue, pid)
			current[s] = queue[0]
			queue = queue[1:]
			quantumEnd[s] = clk[s] + quantum
			wake(clk[s])
			continue
		}
		if clk[s] >= quantumEnd[s] {
			quantumEnd[s] = clk[s] + quantum
		}

		r := st[pos[pid]]
		pos[pid]++
		clk[s] += uint64(r.Gap)
		reads, writes := accessesOf(r.Kind)
		if reads+writes == 0 {
			continue
		}
		p.Refs++
		line := sysmodel.LineIndex(r.Addr)
		for i := 0; i < reads+writes; i++ {
			write := i >= reads
			p.Cluster[0].add(shared.access(line), write)
			p.PerProc[pid].add(prTrack[pid].access(line), write)
		}
		clk[s] += uint64(reads + writes)
		p.ReadRefs[0][s] += uint64(reads)
	}
	copy(p.Issue[0], clk)
	return p, nil
}

func anyIdle(idle []bool) bool {
	for _, b := range idle {
		if b {
			return true
		}
	}
	return false
}
