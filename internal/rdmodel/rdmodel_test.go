package rdmodel

import (
	"math"
	"math/rand"
	"testing"

	"sccsim/internal/mem"
	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// refStack is the naive O(N·M) reuse-distance reference: a plain LRU
// stack of lines.
type refStack struct{ stack []uint32 }

// access returns the exact reuse distance, or distCold.
func (s *refStack) access(line uint32) int {
	for i, ln := range s.stack {
		if ln == line {
			copy(s.stack[1:], s.stack[:i])
			s.stack[0] = line
			return i
		}
	}
	s.stack = append([]uint32{line}, s.stack...)
	return distCold
}

// TestTrackerMatchesNaive: the Fenwick-tree tracker must agree with the
// naive LRU stack on every access — exact distances below the cap,
// far/cold classification otherwise — across enough accesses to force
// several compactions.
func TestTrackerMatchesNaive(t *testing.T) {
	const cap = 16
	tk := newTracker(cap)
	ref := &refStack{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20*4*cap; i++ {
		// A universe a few times the cap exercises cold, exact and far.
		line := uint32(rng.Intn(3 * cap))
		want := ref.access(line)
		if want >= cap {
			want = distFar
		}
		if got := tk.access(line); got != want {
			t.Fatalf("access %d (line %d): tracker says %d, naive says %d", i, line, got, want)
		}
	}
}

// TestTrackerSequential: a strided cold scan then a re-scan has fully
// predictable distances.
func TestTrackerSequential(t *testing.T) {
	tk := newTracker(8)
	for i := 0; i < 6; i++ {
		if d := tk.access(uint32(i)); d != distCold {
			t.Fatalf("first touch of line %d: distance %d, want cold", i, d)
		}
	}
	// Re-scanning in the same order: each line has 5 distinct lines
	// between its two accesses.
	for i := 0; i < 6; i++ {
		if d := tk.access(uint32(i)); d != 5 {
			t.Fatalf("second touch of line %d: distance %d, want 5", i, d)
		}
	}
}

// naiveDirectMapped counts read misses of a direct-mapped cache of
// `lines` lines over a single merged stream.
func naiveDirectMapped(refs []mem.Ref, lines int) (reads, readMisses uint64) {
	tags := make(map[uint32]uint32) // set -> line
	for _, r := range refs {
		rd, wr := accessesOf(r.Kind)
		if rd+wr == 0 {
			continue
		}
		line := sysmodel.LineIndex(r.Addr)
		for i := 0; i < rd+wr; i++ {
			set := line % uint32(lines)
			hit := tags[set] == line
			tags[set] = line
			if i < rd {
				reads++
				if !hit {
					readMisses++
				}
			}
		}
	}
	return reads, readMisses
}

// syntheticProgram builds a small deterministic parallel program. The
// line universe is *sparse* — universeLines distinct random line
// indices spread over a wide range — so the simulator's modulo set
// indexing behaves like the uniform hashing the statistical
// direct-mapped model assumes (a dense sequential footprint would be
// nearly conflict-free under modulo indexing and the model would
// overpredict its conflicts; see Predict's doc).
func syntheticProgram(t *testing.T, procs, refsPerProc int, universeLines int) *trace.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	universe := make([]uint32, universeLines)
	for i := range universe {
		universe[i] = uint32(1 + rng.Intn(1<<22))
	}
	p := &trace.Program{Name: "synth", Procs: procs, Phases: []trace.Phase{{Name: "main"}}}
	for pr := 0; pr < procs; pr++ {
		st := make([]mem.Ref, 0, refsPerProc)
		for i := 0; i < refsPerProc; i++ {
			// Clustered reuse: mostly a small hot set, a tail over the
			// whole universe, so the histogram has real shape.
			var line uint32
			if rng.Intn(4) > 0 {
				line = universe[rng.Intn(universeLines/8)]
			} else {
				line = universe[rng.Intn(universeLines)]
			}
			addr := line * sysmodel.LineSize
			kind := mem.Read
			if rng.Intn(4) == 0 {
				kind = mem.Write
			}
			st = append(st, mem.Ref{Addr: addr, Gap: uint16(rng.Intn(4)), Kind: kind})
		}
		p.Phases[0].Streams = append(p.Phases[0].Streams, st)
	}
	return p
}

// TestPredictDirectMappedCloseToNaive: on a single-processor stream the
// merged-stream interleaving is exact, so the only model error is the
// statistical conflict term — the prediction must land within a few
// percent of a real direct-mapped cache simulation.
func TestPredictDirectMappedCloseToNaive(t *testing.T) {
	prog := syntheticProgram(t, 1, 60_000, 4096)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 1, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	for _, lines := range []int{256, 1024, 4096} {
		pred, err := prof.Predict(lines*sysmodel.LineSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		reads, misses := naiveDirectMapped(prog.Phases[0].Streams[0], lines)
		got := pred.ReadMissRate
		want := float64(misses) / float64(reads)
		if pred.Reads != float64(reads) {
			t.Errorf("lines=%d: predicted %v reads, naive saw %d", lines, pred.Reads, reads)
		}
		if diff := math.Abs(got - want); diff > 0.03 {
			t.Errorf("lines=%d: predicted read miss rate %.4f, naive %.4f (|diff| %.4f > 0.03)",
				lines, got, want, diff)
		}
	}
}

// naiveLRU counts misses of a fully-associative LRU cache — the exact
// ground truth for the assoc>1 threshold model on a single stream.
func naiveLRU(refs []mem.Ref, lines int) (accesses, misses uint64) {
	s := &refStack{}
	for _, r := range refs {
		rd, wr := accessesOf(r.Kind)
		line := sysmodel.LineIndex(r.Addr)
		for i := 0; i < rd+wr; i++ {
			accesses++
			if d := s.access(line); d == distCold || d >= lines {
				misses++
			}
			if len(s.stack) > lines {
				s.stack = s.stack[:lines]
			}
		}
	}
	return accesses, misses
}

// TestPredictLRUThresholdExact: in the fully-associative limit (assoc
// == lines, one set) the binomial set-associative model collapses to
// the LRU threshold, which on a single stream must reproduce a real
// LRU simulation exactly (for sizes within the cap).
func TestPredictLRUThresholdExact(t *testing.T) {
	prog := syntheticProgram(t, 1, 20_000, 2048)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 1, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	for _, lines := range []int{64, 512, 2048} {
		pred, err := prof.Predict(lines*sysmodel.LineSize, lines)
		if err != nil {
			t.Fatal(err)
		}
		_, misses := naiveLRU(prog.Phases[0].Streams[0], lines)
		got := pred.Cluster[0].ReadMisses + pred.Cluster[0].WriteMisses
		if math.Abs(got-float64(misses)) > 1e-6 {
			t.Errorf("lines=%d: fully-associative model predicts %.4f misses, LRU simulation has %d",
				lines, got, misses)
		}
	}
}

// TestPredictAssocMonotone: for a fixed size, predicted misses must be
// non-increasing in associativity — a 2-way cache never predicts more
// misses than direct-mapped, and the fully-associative limit never
// predicts more than any intermediate way count. (LRU stack distances
// obey inclusion, and the binomial tail P(X >= A) shrinks with A.)
func TestPredictAssocMonotone(t *testing.T) {
	prog := syntheticProgram(t, 1, 20_000, 2048)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 1, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	const lines = 512
	prev := math.Inf(1)
	for _, assoc := range []int{1, 2, 4, 8, lines} {
		pred, err := prof.Predict(lines*sysmodel.LineSize, assoc)
		if err != nil {
			t.Fatal(err)
		}
		got := pred.Cluster[0].ReadMisses + pred.Cluster[0].WriteMisses
		if got > prev+1e-9 {
			t.Errorf("assoc=%d predicts %.2f misses, more than the next-lower associativity's %.2f",
				assoc, got, prev)
		}
		prev = got
	}
}

// TestPredictRejectsBadAssoc: associativities below 1 or beyond the
// line count are configuration errors, not silent clamps.
func TestPredictRejectsBadAssoc(t *testing.T) {
	prog := syntheticProgram(t, 1, 1_000, 64)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 1, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Predict(64*sysmodel.LineSize, 0); err == nil {
		t.Error("assoc 0 accepted")
	}
	if _, err := prof.Predict(64*sysmodel.LineSize, 128); err == nil {
		t.Error("assoc beyond the line count accepted")
	}
}

// TestBuildProfileShape: totals, cold counts and per-cluster splits
// must be self-consistent.
func TestBuildProfileShape(t *testing.T) {
	prog := syntheticProgram(t, 4, 5_000, 1024)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 2, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Refs != comp.Refs() {
		t.Errorf("profile Refs %d != trace refs %d", prof.Refs, comp.Refs())
	}
	if len(prof.Cluster) != 2 || len(prof.PerProc) != 4 {
		t.Fatalf("profile shape: %d clusters, %d procs", len(prof.Cluster), len(prof.PerProc))
	}
	var clTotal, prTotal uint64
	for i := range prof.Cluster {
		clTotal += prof.Cluster[i].Reads() + prof.Cluster[i].Writes()
	}
	for i := range prof.PerProc {
		prTotal += prof.PerProc[i].Reads() + prof.PerProc[i].Writes()
	}
	if clTotal != prTotal {
		t.Errorf("cluster access total %d != per-proc total %d", clTotal, prTotal)
	}
	// One cluster merging both processors' streams sees at least as many
	// non-cold long distances; basic monotonicity: merged cold count is
	// the distinct-footprint count per cluster, <= sum of per-proc colds.
	for cl := 0; cl < 2; cl++ {
		merged := prof.Cluster[cl].ColdReads + prof.Cluster[cl].ColdWrites
		var split uint64
		for pr := cl * 2; pr < cl*2+2; pr++ {
			split += prof.PerProc[pr].ColdReads + prof.PerProc[pr].ColdWrites
		}
		if merged > split {
			t.Errorf("cluster %d: merged cold %d > per-proc cold sum %d", cl, merged, split)
		}
	}
	// BuildProfile must reject a non-divisible shape.
	if _, err := BuildProfile(comp, 3, DefaultCap()); err == nil {
		t.Error("BuildProfile accepted 4 procs / 3 clusters")
	}
}

// TestBuildScheduledProfile: the scheduled merge must conserve
// accesses, finish every process, and be deterministic.
func TestBuildScheduledProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var processes [][]mem.Ref
	var wantRefs uint64
	for pid := 0; pid < 5; pid++ {
		n := 2_000 + rng.Intn(1_000)
		st := make([]mem.Ref, 0, n)
		for i := 0; i < n; i++ {
			// Disjoint address spaces, like the real generator.
			addr := uint32((pid*4096 + rng.Intn(512) + 1) * sysmodel.LineSize)
			st = append(st, mem.Ref{Addr: addr, Gap: uint16(rng.Intn(3)), Kind: mem.Read})
		}
		processes = append(processes, st)
		wantRefs += uint64(n)
	}
	prof, err := BuildScheduledProfile("mp", processes, 2, 1_000, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Refs != wantRefs {
		t.Errorf("scheduled profile saw %d refs, want %d", prof.Refs, wantRefs)
	}
	if got := prof.Cluster[0].Reads() + prof.Cluster[0].Writes(); got != wantRefs {
		t.Errorf("shared histogram holds %d accesses, want %d", got, wantRefs)
	}
	// Per-process cold counts equal each process's distinct footprint
	// (disjoint address spaces: the shared cache sees the same lines).
	var perProcCold, sharedCold uint64
	for i := range prof.PerProc {
		perProcCold += prof.PerProc[i].ColdReads
	}
	sharedCold = prof.Cluster[0].ColdReads
	if perProcCold != sharedCold {
		t.Errorf("disjoint processes: shared cold %d != per-process cold sum %d", sharedCold, perProcCold)
	}
	prof2, err := BuildScheduledProfile("mp", processes, 2, 1_000, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	if prof2.Cluster[0].FarReads != prof.Cluster[0].FarReads ||
		prof2.Issue[0][0] != prof.Issue[0][0] || prof2.Issue[0][1] != prof.Issue[0][1] {
		t.Error("scheduled profile is not deterministic")
	}
	if _, err := BuildScheduledProfile("mp", processes, 0, 1_000, 8); err == nil {
		t.Error("BuildScheduledProfile accepted zero slots")
	}
}

// TestPredictMonotonicInSize: bigger caches cannot predict more misses.
func TestPredictMonotonicInSize(t *testing.T) {
	prog := syntheticProgram(t, 2, 10_000, 2048)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 1, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	prevCycles := uint64(math.MaxUint64)
	for _, size := range sysmodel.SCCSizes {
		pred, err := prof.Predict(size, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pred.ReadMissRate > prev+1e-12 {
			t.Errorf("miss rate rose from %.5f to %.5f at %d bytes", prev, pred.ReadMissRate, size)
		}
		if pred.EstCycles > prevCycles {
			t.Errorf("estimated cycles rose from %d to %d at %d bytes", prevCycles, pred.EstCycles, size)
		}
		prev, prevCycles = pred.ReadMissRate, pred.EstCycles
	}
	if _, err := prof.Predict(1, 1); err == nil {
		t.Error("Predict accepted a sub-line cache size")
	}
}
