package rdmodel

import (
	"fmt"
	"math"

	"sccsim/internal/sysmodel"
)

// CacheCounts is one cluster's predicted access and miss counts.
// Counts are expectations (fractional): the direct-mapped model sums
// per-access miss probabilities rather than simulating placements.
type CacheCounts struct {
	Reads, Writes           float64
	ReadMisses, WriteMisses float64
}

// ReadMissRate returns the cluster's predicted read miss ratio.
func (c CacheCounts) ReadMissRate() float64 {
	if c.Reads == 0 {
		return 0
	}
	return c.ReadMisses / c.Reads
}

// Prediction is the model's answer for one (profile, SCC size) point:
// per-cluster expected miss counts, the system-wide read miss ratio
// (the paper's Table 4 statistic), and a derived execution-time
// estimate.
type Prediction struct {
	SCCBytes, Assoc int
	// Cluster[i] is cluster i's predicted counts.
	Cluster []CacheCounts
	// Reads/ReadMisses aggregate the clusters; ReadMissRate is their
	// ratio.
	Reads, ReadMisses float64
	ReadMissRate      float64
	// EstPhaseCycles[i] estimates phase i's duration; EstCycles their
	// sum (the makespan estimate).
	EstPhaseCycles []uint64
	EstCycles      uint64
}

// Predict estimates the miss ratio and execution time of one SCC size
// from the profile, in O(cap) per cluster — every grid size reuses the
// same single profile pass.
//
// Miss model: a compulsory (cold) access always misses. For a
// direct-mapped cache of C lines (assoc 1, the paper's SCC), an access
// at reuse distance d hits iff none of the d intervening distinct lines
// displaced it, which under uniform index hashing has probability
// (1-1/C)^d — the statistical conflict-miss model from the
// reuse-distance literature. Distances at or above the tracker cap are
// taken as certain misses. For assoc > 1 the model falls back to the
// fully-associative LRU threshold (miss iff d >= C) — a documented
// approximation, adequate because the paper's design space is entirely
// direct-mapped.
//
// Time model: per phase, each processor issues its stall-free cycles
// plus sysmodel.MemLatency per predicted read miss (its share of the
// cluster's misses, in proportion to its reads); the phase estimate is
// the slowest processor's total, and the makespan the sum over phases.
// Write misses are assumed absorbed by the write buffer, and bank and
// bus contention are not modeled.
func (p *Profile) Predict(sccBytes, assoc int) (*Prediction, error) {
	lines := sccBytes / sysmodel.LineSize
	if lines < 1 {
		return nil, fmt.Errorf("rdmodel: SCC size %d below one %d-byte line", sccBytes, sysmodel.LineSize)
	}
	if lines > p.Cap {
		// Distances in [cap, lines) were not tracked exactly; clamping
		// keeps the prediction defined (and conservative) but a profile
		// built with a larger cap would be exact.
		lines = p.Cap
	}
	pred := &Prediction{
		SCCBytes: sccBytes, Assoc: assoc,
		Cluster: make([]CacheCounts, len(p.Cluster)),
	}
	for i := range p.Cluster {
		h := &p.Cluster[i]
		c := CacheCounts{Reads: float64(h.Reads()), Writes: float64(h.Writes())}
		c.ReadMisses = float64(h.ColdReads + h.FarReads)
		c.WriteMisses = float64(h.ColdWrites + h.FarWrites)
		if assoc == 1 {
			surv := 1.0
			decay := 1 - 1/float64(lines)
			for d := 0; d < p.Cap; d++ {
				pMiss := 1 - surv
				if h.Read[d] != 0 {
					c.ReadMisses += pMiss * float64(h.Read[d])
				}
				if h.Write[d] != 0 {
					c.WriteMisses += pMiss * float64(h.Write[d])
				}
				surv *= decay
			}
		} else {
			for d := lines; d < p.Cap; d++ {
				c.ReadMisses += float64(h.Read[d])
				c.WriteMisses += float64(h.Write[d])
			}
		}
		pred.Cluster[i] = c
		pred.Reads += c.Reads
		pred.ReadMisses += c.ReadMisses
	}
	if pred.Reads > 0 {
		pred.ReadMissRate = pred.ReadMisses / pred.Reads
	}

	ppc := p.Procs / len(p.Cluster)
	pred.EstPhaseCycles = make([]uint64, len(p.Issue))
	for i := range p.Issue {
		var worst float64
		for pr := 0; pr < p.Procs; pr++ {
			rate := pred.Cluster[pr/ppc].ReadMissRate()
			est := float64(p.Issue[i][pr]) +
				rate*float64(p.ReadRefs[i][pr])*float64(sysmodel.MemLatency)
			if est > worst {
				worst = est
			}
		}
		pred.EstPhaseCycles[i] = uint64(math.Round(worst))
		pred.EstCycles += pred.EstPhaseCycles[i]
	}
	return pred, nil
}
