package rdmodel

import (
	"fmt"
	"math"

	"sccsim/internal/sysmodel"
)

// CacheCounts is one cluster's predicted access and miss counts.
// Counts are expectations (fractional): the direct-mapped model sums
// per-access miss probabilities rather than simulating placements.
type CacheCounts struct {
	Reads, Writes           float64
	ReadMisses, WriteMisses float64
}

// ReadMissRate returns the cluster's predicted read miss ratio.
func (c CacheCounts) ReadMissRate() float64 {
	if c.Reads == 0 {
		return 0
	}
	return c.ReadMisses / c.Reads
}

// Prediction is the model's answer for one (profile, SCC size) point:
// per-cluster expected miss counts, the system-wide read miss ratio
// (the paper's Table 4 statistic), and a derived execution-time
// estimate.
type Prediction struct {
	SCCBytes, Assoc int
	// Cluster[i] is cluster i's predicted counts.
	Cluster []CacheCounts
	// Reads/ReadMisses aggregate the clusters; ReadMissRate is their
	// ratio.
	Reads, ReadMisses float64
	ReadMissRate      float64
	// EstPhaseCycles[i] estimates phase i's duration; EstCycles their
	// sum (the makespan estimate).
	EstPhaseCycles []uint64
	EstCycles      uint64
}

// Predict estimates the miss ratio and execution time of one SCC size
// from the profile, in O(cap) per cluster — every grid size reuses the
// same single profile pass.
//
// Miss model: a compulsory (cold) access always misses. For a
// direct-mapped cache of C lines (assoc 1, the paper's SCC), an access
// at reuse distance d hits iff none of the d intervening distinct lines
// displaced it, which under uniform index hashing has probability
// (1-1/C)^d — the statistical conflict-miss model from the
// reuse-distance literature. For an A-way LRU cache the same argument
// generalises: with S = C/A sets, the access hits iff fewer than A of
// the d intervening lines landed in its set, i.e. P(hit) = P(X < A)
// with X ~ Binomial(d, A/C). The distribution is advanced
// incrementally in d, so the A-way model costs O(cap*A) per cluster
// and degenerates exactly to the direct-mapped recurrence at A = 1 and
// to the fully-associative LRU threshold (miss iff d >= C) at S = 1.
// Distances at or above the tracker cap are taken as certain misses.
// The model assumes LRU within a set; random replacement is not
// modeled (callers on the analytic backend reject it).
//
// Time model: per phase, each processor issues its stall-free cycles
// plus sysmodel.MemLatency per predicted read miss (its share of the
// cluster's misses, in proportion to its reads); the phase estimate is
// the slowest processor's total, and the makespan the sum over phases.
// Write misses are assumed absorbed by the write buffer, and bank and
// bus contention are not modeled.
func (p *Profile) Predict(sccBytes, assoc int) (*Prediction, error) {
	lines := sccBytes / sysmodel.LineSize
	if lines < 1 {
		return nil, fmt.Errorf("rdmodel: SCC size %d below one %d-byte line", sccBytes, sysmodel.LineSize)
	}
	if assoc < 1 {
		return nil, fmt.Errorf("rdmodel: associativity %d, want >= 1", assoc)
	}
	if assoc > lines {
		return nil, fmt.Errorf("rdmodel: associativity %d exceeds the %d lines of a %d-byte SCC", assoc, lines, sccBytes)
	}
	if lines > p.Cap {
		// Distances in [cap, lines) were not tracked exactly; clamping
		// keeps the prediction defined (and conservative) but a profile
		// built with a larger cap would be exact.
		lines = p.Cap
	}
	pred := &Prediction{
		SCCBytes: sccBytes, Assoc: assoc,
		Cluster: make([]CacheCounts, len(p.Cluster)),
	}
	for i := range p.Cluster {
		h := &p.Cluster[i]
		c := CacheCounts{Reads: float64(h.Reads()), Writes: float64(h.Writes())}
		c.ReadMisses = float64(h.ColdReads + h.FarReads)
		c.WriteMisses = float64(h.ColdWrites + h.FarWrites)
		if assoc == 1 {
			surv := 1.0
			decay := 1 - 1/float64(lines)
			for d := 0; d < p.Cap; d++ {
				pMiss := 1 - surv
				if h.Read[d] != 0 {
					c.ReadMisses += pMiss * float64(h.Read[d])
				}
				if h.Write[d] != 0 {
					c.WriteMisses += pMiss * float64(h.Write[d])
				}
				surv *= decay
			}
		} else {
			// A-way LRU: advance P(X_d = k) for k < assoc under one more
			// Bernoulli(q) trial per distance step; the hit probability at
			// distance d is the mass below assoc.
			q := float64(assoc) / float64(lines)
			pk := make([]float64, assoc)
			pk[0] = 1
			for d := 0; d < p.Cap; d++ {
				var pHit float64
				for k := 0; k < assoc; k++ {
					pHit += pk[k]
				}
				pMiss := 1 - pHit
				if h.Read[d] != 0 {
					c.ReadMisses += pMiss * float64(h.Read[d])
				}
				if h.Write[d] != 0 {
					c.WriteMisses += pMiss * float64(h.Write[d])
				}
				for k := assoc - 1; k > 0; k-- {
					pk[k] = pk[k]*(1-q) + pk[k-1]*q
				}
				pk[0] *= 1 - q
			}
		}
		pred.Cluster[i] = c
		pred.Reads += c.Reads
		pred.ReadMisses += c.ReadMisses
	}
	if pred.Reads > 0 {
		pred.ReadMissRate = pred.ReadMisses / pred.Reads
	}

	ppc := p.Procs / len(p.Cluster)
	pred.EstPhaseCycles = make([]uint64, len(p.Issue))
	for i := range p.Issue {
		var worst float64
		for pr := 0; pr < p.Procs; pr++ {
			rate := pred.Cluster[pr/ppc].ReadMissRate()
			est := float64(p.Issue[i][pr]) +
				rate*float64(p.ReadRefs[i][pr])*float64(sysmodel.MemLatency)
			if est > worst {
				worst = est
			}
		}
		pred.EstPhaseCycles[i] = uint64(math.Round(worst))
		pred.EstCycles += pred.EstPhaseCycles[i]
	}
	return pred, nil
}
