package rdmodel

import (
	"testing"

	"sccsim/internal/sysmodel"
	"sccsim/internal/trace"
)

// TestCurveMatchesPredictDirectMapped: a Curve replays Predict's
// direct-mapped (assoc 1) conflict model with a shared
// miss-probability table — the two must agree exactly (the same
// float64 recurrence in the same order) at every size, including sizes
// beyond the tracker cap, across multi-cluster shapes.
func TestCurveMatchesPredictDirectMapped(t *testing.T) {
	prog := syntheticProgram(t, 8, 20_000, 2048)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, clusters := range []int{1, 2, 4} {
		prof, err := BuildProfile(comp, clusters, DefaultCap())
		if err != nil {
			t.Fatal(err)
		}
		curve := prof.Curve()
		sizes := append([]int(nil), sysmodel.SCCSizes...)
		sizes = append(sizes, 5120, 2*sysmodel.SCCSizes[len(sysmodel.SCCSizes)-1])
		for _, size := range sizes {
			pred, err := prof.Predict(size, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := curve.At(size)
			if err != nil {
				t.Fatal(err)
			}
			if got.ReadMissRate != pred.ReadMissRate {
				t.Errorf("clusters=%d size=%d: curve miss rate %v, predict %v",
					clusters, size, got.ReadMissRate, pred.ReadMissRate)
			}
			if got.EstCycles != pred.EstCycles {
				t.Errorf("clusters=%d size=%d: curve est cycles %d, predict %d",
					clusters, size, got.EstCycles, pred.EstCycles)
			}
		}
	}
}

// TestCurveMonotonicInSize: a line's survival chance only improves as
// the cache grows, so the curve's miss rate must be non-increasing in
// size.
func TestCurveMonotonicInSize(t *testing.T) {
	prog := syntheticProgram(t, 4, 15_000, 1024)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 2, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	curve := prof.Curve()
	prev := 2.0
	for lines := 16; lines <= prof.Cap; lines *= 2 {
		pt, err := curve.At(lines * sysmodel.LineSize)
		if err != nil {
			t.Fatal(err)
		}
		if pt.ReadMissRate > prev {
			t.Errorf("lines=%d: miss rate %v rose above %v", lines, pt.ReadMissRate, prev)
		}
		prev = pt.ReadMissRate
	}
}

// TestCurveRejectsSubLineSize mirrors Predict's size validation.
func TestCurveRejectsSubLineSize(t *testing.T) {
	prog := syntheticProgram(t, 1, 1_000, 256)
	comp, err := trace.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(comp, 1, DefaultCap())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Curve().At(sysmodel.LineSize - 1); err == nil {
		t.Error("Curve.At accepted a size below one line")
	}
}
