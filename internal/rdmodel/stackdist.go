package rdmodel

import "sort"

// tracker computes LRU stack distances (reuse distances) over a stream
// of cache-line indices, capped at cap: an access's distance is the
// number of *distinct* other lines touched since the previous access to
// the same line, or distFar when that count is at least cap, or
// distCold on the first-ever access. Distances below the cap are exact.
//
// The classic algorithm (Bennett & Kruskal): keep each line's
// last-access time and a Fenwick tree with one set bit per live line at
// its last-access slot; the distance is then a prefix-sum difference in
// O(log n). Time slots grow without bound, so the tracker compacts
// periodically — it keeps only the cap most-recently-used lines (any
// older line would report distFar anyway), reassigns their slots
// densely, and rebuilds the tree. With slots = 4*cap the compaction
// cost is amortized over at least 3*cap accesses, keeping the whole
// pass O(N log cap).
type tracker struct {
	cap   int
	slots int
	// bit is the Fenwick tree (1-indexed) over time slots; bit position
	// s+1 covers slot s. Each tracked line contributes one set slot (its
	// last access).
	bit []int32
	// t is the next time slot to assign.
	t int
	// last maps a tracked line to its last-access slot. Lines evicted by
	// compaction leave the map; a later access to one reports distFar.
	last map[uint32]int32
	// seen holds every line ever accessed, distinguishing cold (first
	// touch) from far (tracked once, since aged out).
	seen map[uint32]struct{}
}

// Sentinel distances returned by access alongside the exact ones.
const (
	// distFar: the reuse distance is >= cap (exact value not tracked).
	distFar = -1
	// distCold: first-ever access to the line (a compulsory miss at any
	// cache size).
	distCold = -2
)

func newTracker(capLines int) *tracker {
	if capLines < 1 {
		capLines = 1
	}
	return &tracker{
		cap:   capLines,
		slots: 4 * capLines,
		bit:   make([]int32, 4*capLines+1),
		last:  make(map[uint32]int32),
		seen:  make(map[uint32]struct{}),
	}
}

// access records a reference to line and returns its reuse distance:
// an exact value in [0, cap), or distFar, or distCold.
func (tk *tracker) access(line uint32) int {
	if tk.t == tk.slots {
		tk.compact()
	}
	d := distCold
	if lt, ok := tk.last[line]; ok {
		// Lines touched after slot lt each hold one set slot in (lt, t).
		d = int(tk.prefix(tk.t-1) - tk.prefix(int(lt)))
		if d >= tk.cap {
			d = distFar
		}
		tk.clearSlot(int(lt))
	} else if _, ok := tk.seen[line]; ok {
		d = distFar
	} else {
		tk.seen[line] = struct{}{}
	}
	tk.setSlot(tk.t)
	tk.last[line] = int32(tk.t)
	tk.t++
	return d
}

// compact drops all but the cap most-recently-used lines and renumbers
// the survivors' slots densely from zero.
func (tk *tracker) compact() {
	type lineAt struct {
		line uint32
		at   int32
	}
	live := make([]lineAt, 0, len(tk.last))
	for ln, at := range tk.last {
		live = append(live, lineAt{ln, at})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].at < live[j].at })
	if len(live) > tk.cap {
		for _, e := range live[:len(live)-tk.cap] {
			delete(tk.last, e.line)
		}
		live = live[len(live)-tk.cap:]
	}
	for i := range tk.bit {
		tk.bit[i] = 0
	}
	for i, e := range live {
		tk.last[e.line] = int32(i)
		tk.setSlot(i)
	}
	tk.t = len(live)
}

// prefix returns the number of set slots in [0, s]; s may be -1.
func (tk *tracker) prefix(s int) int32 {
	var sum int32
	for i := s + 1; i > 0; i -= i & -i {
		sum += tk.bit[i]
	}
	return sum
}

func (tk *tracker) setSlot(s int) {
	for i := s + 1; i <= tk.slots; i += i & -i {
		tk.bit[i]++
	}
}

func (tk *tracker) clearSlot(s int) {
	for i := s + 1; i <= tk.slots; i += i & -i {
		tk.bit[i]--
	}
}
