package rdmodel

import (
	"fmt"
	"math"

	"sccsim/internal/sysmodel"
)

// Curve is a Profile prepared for the search triage stage: one profile
// pass answers every SCC size. Each query replays Predict's
// direct-mapped (assoc 1) statistical conflict model — the model the
// paper's entire design space runs under — producing numerically
// identical estimates to Predict(size, 1), so the search pipeline's
// calibrated pruning margins transfer directly from the analytic
// backend's cross-validation. The miss-probability table (1-(1-1/C)^d
// for each distance d) is built once per size and shared across the
// clusters, which keeps a query at O(cap + clusters x nonzero
// distances + phases x procs) — microseconds against the exact
// simulator's seconds.
//
// A Curve is not safe for concurrent use: the miss-probability scratch
// table is reused across At calls. The search triage stage queries it
// from a single goroutine.
type Curve struct {
	prof *Profile
	// baseReadMisses[c] counts cluster c's cold and far reads — misses
	// at every size; reads[c] is its total read count.
	baseReadMisses []float64
	reads          []float64
	// pmiss is the per-At scratch table: pmiss[d] = 1-(1-1/C)^d for the
	// last queried line count, built with Predict's exact recurrence.
	pmiss []float64
}

// Curve folds the profile's cluster histograms into the per-size query
// form. The returned Curve shares the profile's histogram and
// Issue/ReadRefs tables and must not outlive mutations to them
// (profiles are immutable once built, so in practice any Curve is safe
// forever).
func (p *Profile) Curve() *Curve {
	c := &Curve{
		prof:           p,
		baseReadMisses: make([]float64, len(p.Cluster)),
		reads:          make([]float64, len(p.Cluster)),
		pmiss:          make([]float64, p.Cap),
	}
	for i := range p.Cluster {
		h := &p.Cluster[i]
		c.baseReadMisses[i] = float64(h.ColdReads + h.FarReads)
		c.reads[i] = float64(h.Reads())
	}
	return c
}

// CurvePoint is one size's answer off a Curve: the system-wide
// predicted read miss ratio and the derived execution-time estimate,
// numerically identical to Predict's direct-mapped (assoc 1)
// prediction for the same profile and size.
type CurvePoint struct {
	SCCBytes     int
	ReadMissRate float64
	EstCycles    uint64
}

// At evaluates the curve at one SCC size. Sizes whose line count
// exceeds the profile's tracker cap clamp to the cap, exactly as
// Predict does; sizes below one line are an error.
func (c *Curve) At(sccBytes int) (CurvePoint, error) {
	lines := sccBytes / sysmodel.LineSize
	if lines < 1 {
		return CurvePoint{}, fmt.Errorf("rdmodel: SCC size %d below one %d-byte line", sccBytes, sysmodel.LineSize)
	}
	p := c.prof
	if lines > p.Cap {
		lines = p.Cap
	}
	pt := CurvePoint{SCCBytes: sccBytes}

	// Miss probabilities by reuse distance, Predict's assoc==1
	// recurrence verbatim: the survival chance of a line across d
	// intervening distinct lines is (1-1/C)^d under uniform index
	// hashing. The same iterated product yields bit-identical floats,
	// and the table is shared by every cluster (Predict recomputes the
	// identical sequence per cluster).
	surv := 1.0
	decay := 1 - 1/float64(lines)
	for d := 0; d < p.Cap; d++ {
		c.pmiss[d] = 1 - surv
		surv *= decay
	}

	rates := make([]float64, len(p.Cluster))
	var reads, misses float64
	for i := range p.Cluster {
		h := &p.Cluster[i]
		m := c.baseReadMisses[i]
		for d := 0; d < p.Cap; d++ {
			if h.Read[d] != 0 {
				m += c.pmiss[d] * float64(h.Read[d])
			}
		}
		if c.reads[i] > 0 {
			rates[i] = m / c.reads[i]
		}
		reads += c.reads[i]
		misses += m
	}
	if reads > 0 {
		pt.ReadMissRate = misses / reads
	}

	// Timing model copied from Predict: per phase, the slowest
	// processor's stall-free issue cycles plus MemLatency per predicted
	// read miss; the makespan is the sum over phases.
	ppc := p.Procs / len(p.Cluster)
	for i := range p.Issue {
		var worst float64
		for pr := 0; pr < p.Procs; pr++ {
			est := float64(p.Issue[i][pr]) +
				rates[pr/ppc]*float64(p.ReadRefs[i][pr])*float64(sysmodel.MemLatency)
			if est > worst {
				worst = est
			}
		}
		pt.EstCycles += uint64(math.Round(worst))
	}
	return pt, nil
}
