package mem

import "testing"

// FuzzColoredAllocator checks that arbitrary allocation sequences never
// produce overlapping regions or touch the stack holes.
func FuzzColoredAllocator(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 255})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, sizes []byte) {
		a := NewColoredAllocator()
		var prevEnd uint32
		for i, b := range sizes {
			if i > 500 {
				break
			}
			size := uint32(b)*96 + 1 // 1..24481 bytes, within ColorData
			r := a.Alloc(size, 16)
			if r.Start < prevEnd {
				t.Fatalf("allocation %d overlaps previous (start %#x < %#x)", i, r.Start, prevEnd)
			}
			if InHole(r.Start) || InHole(r.End()-1) {
				t.Fatalf("allocation %d [%#x,%#x) touches a stack hole", i, r.Start, r.End())
			}
			// The region must not straddle a hole either.
			for off := uint32(0); off < r.Size; off += 4096 {
				if InHole(r.Start + off) {
					t.Fatalf("allocation %d interior %#x in a hole", i, r.Start+off)
				}
			}
			prevEnd = r.End()
		}
	})
}
