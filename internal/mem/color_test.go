package mem

import (
	"testing"
	"testing/quick"
)

func TestStackBaseInHole(t *testing.T) {
	for i := 0; i < 64; i++ {
		base := StackBase(i)
		for off := uint32(0); off < StackBytes; off += 16 {
			if !InHole(base + off) {
				t.Fatalf("stack %d byte %#x outside the coloring hole", i, base+off)
			}
		}
	}
}

func TestStackBasesDisjoint(t *testing.T) {
	seen := map[uint32]int{}
	for i := 0; i < 64; i++ {
		b := StackBase(i)
		for off := uint32(0); off < StackBytes; off++ {
			if prev, ok := seen[b+off]; ok {
				t.Fatalf("stacks %d and %d overlap at %#x", prev, i, b+off)
			}
		}
		seen[b] = i
	}
}

func TestStackBasesDistinctSetsWithinCluster(t *testing.T) {
	// For every SCC size >= 32 KB, the hot first lines of the 8 stacks of
	// one cluster must map to distinct cache sets from each other (and
	// the whole stack must avoid data by the hole construction).
	for _, size := range []uint32{32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024} {
		for cluster := 0; cluster < 4; cluster++ {
			sets := map[uint32]int{}
			for p := 0; p < 8; p++ {
				i := cluster*8 + p
				set := StackBase(i) % size
				if prev, ok := sets[set]; ok {
					t.Errorf("size %dKB: stacks %d and %d share set image %#x",
						size/1024, prev, i, set)
				}
				sets[set] = i
			}
		}
	}
}

func TestStackBasePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StackBase(-1) did not panic")
		}
	}()
	StackBase(-1)
}

func TestColoredAllocatorAvoidsHoles(t *testing.T) {
	a := NewColoredAllocator()
	for i := 0; i < 10000; i++ {
		r := a.Alloc(96, 16)
		if InHole(r.Start) || InHole(r.End()-1) {
			t.Fatalf("allocation %d [%#x,%#x) touches a hole", i, r.Start, r.End())
		}
	}
}

func TestColoredAllocatorRejectsHuge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized colored allocation did not panic")
		}
	}()
	NewColoredAllocator().Alloc(ColorData+1, 16)
}

func TestColoredAllocatorMaxSize(t *testing.T) {
	a := NewColoredAllocator()
	a.Alloc(100, 16) // misalign within the block
	r := a.Alloc(ColorData, 16)
	if InHole(r.Start) || InHole(r.End()-1) {
		t.Errorf("ColorData-sized allocation [%#x,%#x) touches a hole", r.Start, r.End())
	}
}

func TestInHole(t *testing.T) {
	if InHole(Base) {
		t.Error("Base is in a hole")
	}
	if !InHole(Base + ColorData) {
		t.Error("first hole byte not detected")
	}
	if InHole(Base + ColorBlock) {
		t.Error("second block start is in a hole")
	}
	if InHole(0) {
		t.Error("address below Base reported as hole")
	}
}

// Property: colored allocations never overlap each other, never touch
// holes, and stay aligned.
func TestColoredAllocatorProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewColoredAllocator()
		var prevEnd uint32
		for i, s16 := range sizes {
			if i > 200 {
				break
			}
			size := uint32(s16)%2048 + 1
			r := a.Alloc(size, 16)
			if r.Start%16 != 0 || r.Start < prevEnd {
				return false
			}
			if InHole(r.Start) || InHole(r.End()-1) {
				return false
			}
			prevEnd = r.End()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
