package mem

import "fmt"

// Allocator carves a flat 32-bit virtual address space into regions, one
// per application data structure. Workloads use it so that their emitted
// addresses have the same structural layout the real applications would
// have: arrays are contiguous, records are padded to their natural size,
// and distinct structures never overlap.
//
// The zero Allocator starts allocating at Base. Allocation is bump-pointer
// only; workload data is never freed within a run.
type Allocator struct {
	next uint32
}

// Base is the first address handed out by a fresh Allocator. Address 0 is
// reserved so that a zero Addr can be recognized as "unset" in tests.
const Base uint32 = 0x0001_0000

// NewAllocator returns an allocator whose first region starts at Base.
func NewAllocator() *Allocator {
	return &Allocator{next: Base}
}

// Region is a contiguous range of virtual addresses.
type Region struct {
	// Start is the first byte address of the region.
	Start uint32
	// Size is the region length in bytes.
	Size uint32
}

// End returns the address one past the last byte of the region.
func (r Region) End() uint32 { return r.Start + r.Size }

// Contains reports whether addr lies inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Start && addr < r.End()
}

// Elem returns the address of the i'th element of size elemSize within the
// region, panicking if the element would fall outside the region. It is the
// workhorse used by workloads to address array entries.
func (r Region) Elem(i int, elemSize uint32) uint32 {
	addr := r.Start + uint32(i)*elemSize
	if addr+elemSize > r.End() {
		panic(fmt.Sprintf("mem: element %d (size %d) outside region [%#x,%#x)",
			i, elemSize, r.Start, r.End()))
	}
	return addr
}

// Alloc reserves size bytes aligned to align (which must be a power of
// two, or 0/1 for byte alignment) and returns the region.
func (a *Allocator) Alloc(size, align uint32) Region {
	if a.next == 0 {
		a.next = Base
	}
	if align > 1 {
		if align&(align-1) != 0 {
			panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
		}
		a.next = (a.next + align - 1) &^ (align - 1)
	}
	if size == 0 {
		size = 1 // keep regions non-empty so Contains is meaningful
	}
	r := Region{Start: a.next, Size: size}
	if r.End() < r.Start {
		panic("mem: address space exhausted")
	}
	a.next = r.End()
	return r
}

// AllocArray reserves n elements of elemSize bytes each, aligned to the
// element size rounded up to a power of two (capped at 64).
func (a *Allocator) AllocArray(n int, elemSize uint32) Region {
	align := uint32(1)
	for align < elemSize && align < 64 {
		align <<= 1
	}
	return a.Alloc(uint32(n)*elemSize, align)
}

// Used returns the total number of bytes of address space consumed so far.
func (a *Allocator) Used() uint32 {
	if a.next == 0 {
		return 0
	}
	return a.next - Base
}
