package mem

import (
	"testing"
	"testing/quick"
	"unsafe"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" {
		t.Errorf("Read.String() = %q, want %q", Read.String(), "read")
	}
	if Write.String() != "write" {
		t.Errorf("Write.String() = %q, want %q", Write.String(), "write")
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("Kind(9).String() = %q, want %q", got, "Kind(9)")
	}
}

func TestRefIsCompact(t *testing.T) {
	if sz := unsafe.Sizeof(Ref{}); sz != 8 {
		t.Fatalf("Ref size = %d bytes, want 8", sz)
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Addr: 0x1234, Kind: Write, Gap: 3}
	want := "write 0x00001234 +3"
	if got := r.String(); got != want {
		t.Errorf("Ref.String() = %q, want %q", got, want)
	}
}

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator()
	r1 := a.Alloc(100, 16)
	if r1.Start != Base {
		t.Errorf("first region starts at %#x, want %#x", r1.Start, Base)
	}
	if r1.Size != 100 {
		t.Errorf("region size = %d, want 100", r1.Size)
	}
	r2 := a.Alloc(50, 16)
	if r2.Start < r1.End() {
		t.Errorf("regions overlap: r1 ends %#x, r2 starts %#x", r1.End(), r2.Start)
	}
	if r2.Start%16 != 0 {
		t.Errorf("region not aligned: start %#x", r2.Start)
	}
}

func TestAllocatorZeroValue(t *testing.T) {
	var a Allocator
	r := a.Alloc(8, 8)
	if r.Start != Base {
		t.Errorf("zero-value allocator starts at %#x, want %#x", r.Start, Base)
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := NewAllocator()
	r := a.Alloc(0, 1)
	if r.Size == 0 {
		t.Error("zero-size allocation should be rounded up to a non-empty region")
	}
}

func TestAllocatorBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alloc with non-power-of-two alignment did not panic")
		}
	}()
	NewAllocator().Alloc(8, 3)
}

func TestRegionContains(t *testing.T) {
	r := Region{Start: 0x100, Size: 0x10}
	cases := []struct {
		addr uint32
		want bool
	}{
		{0x0ff, false},
		{0x100, true},
		{0x10f, true},
		{0x110, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.addr); got != c.want {
			t.Errorf("Contains(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestRegionElem(t *testing.T) {
	a := NewAllocator()
	r := a.AllocArray(10, 8)
	if got := r.Elem(0, 8); got != r.Start {
		t.Errorf("Elem(0) = %#x, want %#x", got, r.Start)
	}
	if got := r.Elem(9, 8); got != r.Start+72 {
		t.Errorf("Elem(9) = %#x, want %#x", got, r.Start+72)
	}
}

func TestRegionElemOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Elem past the end of the region did not panic")
		}
	}()
	a := NewAllocator()
	r := a.AllocArray(10, 8)
	r.Elem(10, 8)
}

func TestAllocArrayAlignment(t *testing.T) {
	a := NewAllocator()
	a.Alloc(3, 1) // misalign the bump pointer
	r := a.AllocArray(4, 8)
	if r.Start%8 != 0 {
		t.Errorf("AllocArray region start %#x not 8-aligned", r.Start)
	}
	if r.Size != 32 {
		t.Errorf("AllocArray size = %d, want 32", r.Size)
	}
}

func TestUsed(t *testing.T) {
	a := NewAllocator()
	if a.Used() != 0 {
		t.Errorf("fresh allocator Used() = %d, want 0", a.Used())
	}
	a.Alloc(128, 1)
	if a.Used() != 128 {
		t.Errorf("Used() = %d, want 128", a.Used())
	}
	var z Allocator
	if z.Used() != 0 {
		t.Errorf("zero allocator Used() = %d, want 0", z.Used())
	}
}

// Property: allocations never overlap and are always properly aligned.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16, alignExp uint8) bool {
		a := NewAllocator()
		align := uint32(1) << (alignExp % 7) // 1..64
		var prev Region
		for i, s := range sizes {
			if i > 256 {
				break
			}
			r := a.Alloc(uint32(s), align)
			if align > 1 && r.Start%align != 0 {
				return false
			}
			if i > 0 && r.Start < prev.End() {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
