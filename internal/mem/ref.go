// Package mem provides the memory-reference primitives shared by the
// workload generators and the multiprocessor simulator: access kinds,
// the Ref record that a workload emits for every memory operation, and a
// simple virtual-address allocator used to lay out each application's data
// structures in a flat address space.
//
// Addresses are 32-bit virtual byte addresses. The simulator is a cache
// simulator, not a functional emulator, so a Ref carries no data payload:
// only the address, the kind of access, and the number of non-memory
// instructions the processor executed since its previous memory reference
// (the "compute gap", used to advance the processor clock).
package mem

import "fmt"

// Kind classifies a memory reference.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// nKinds is the number of memory reference kinds (for stat arrays).
	nKinds

	// Idle is not a memory access: it advances the issuing processor's
	// clock by the Ref's Gap without touching the memory system. Workload
	// builders emit Idle refs to encode compute stretches longer than a
	// single Gap field can hold. Idle deliberately sits above nKinds so
	// that per-kind statistics arrays cover memory accesses only; it must
	// never be passed to a cache.
	Idle Kind = Kind(nKinds)

	// Lock is a test-and-set acquisition of the lock word at Addr (the
	// ANL-macro LOCK primitive the SPLASH applications use). The
	// simulator spins — re-reading the cached lock word — until the
	// holder releases it, then performs the atomic write.
	Lock Kind = Kind(nKinds) + 1
	// Unlock releases the lock word at Addr with a store.
	Unlock Kind = Kind(nKinds) + 2
)

// NumKinds is the number of distinct reference kinds.
const NumKinds = int(nKinds)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Idle:
		return "idle"
	case Lock:
		return "lock"
	case Unlock:
		return "unlock"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is one memory reference emitted by a workload on behalf of one
// logical processor. Refs are compact (8 bytes) because the parallel
// workloads generate millions of them per run.
type Ref struct {
	// Addr is the 32-bit virtual byte address accessed.
	Addr uint32
	// Gap is the number of non-memory instructions executed since the
	// processor's previous memory reference. The simulator advances the
	// processor clock by Gap cycles (CPI 1 on non-memory work) before
	// issuing the access.
	Gap uint16
	// Kind says whether this is a load or a store.
	Kind Kind
	_    uint8 // padding; keeps Ref at 8 bytes
}

// String implements fmt.Stringer for debugging output.
func (r Ref) String() string {
	return fmt.Sprintf("%s 0x%08x +%d", r.Kind, r.Addr, r.Gap)
}
