package mem

import "fmt"

// Page coloring. The workload generators place per-processor stacks so
// that, in a direct-mapped cache of 32 KB or larger, stack lines never
// alias application data — the job an OS page-coloring policy does on
// real machines. Without it, whichever data happens to share cache sets
// with a processor's (extremely hot) stack frame ping-pongs pathologically
// at one arbitrary cache size.
//
// The scheme: the data address space is divided into 32 KB color blocks;
// the first 24 KB of each block holds data, the last 8 KB is a hole.
// Stacks are placed inside the holes at staggered 1 KB offsets, so
//
//   - for cache sizes >= 32 KB, stacks fall in hole-image sets that data
//     never occupies (no stack/data conflicts), and different processors'
//     stacks fall at distinct offsets (no stack/stack conflicts up to 8
//     processors per cluster);
//   - for cache sizes <= 16 KB, holes and data alias freely, so multiple
//     processors' private stacks interfere in a small shared cache — the
//     destructive-interference regime the paper observes.
const (
	// ColorBlock is the coloring granule.
	ColorBlock = 32 * 1024
	// ColorData is the data-usable prefix of each color block.
	ColorData = 24 * 1024
	// StackBytes is the per-processor stack allocation, sized to one
	// staggering step so stacks never overlap.
	StackBytes = 1024
)

// StackBase returns the colored base address of processor i's stack.
func StackBase(i int) uint32 {
	if i < 0 {
		panic("mem: negative processor index")
	}
	block := uint32(i)
	off := uint32(i) * StackBytes % (ColorBlock - ColorData)
	return Base + block*ColorBlock + ColorData + off
}

// ColoredAllocator is a bump allocator that skips the stack holes: every
// region it returns lies entirely within the data portion of the color
// blocks. Single allocations are limited to ColorData bytes; workloads
// that need large arrays allocate per element or per chunk.
type ColoredAllocator struct {
	next uint32
}

// NewColoredAllocator returns an allocator starting at Base.
func NewColoredAllocator() *ColoredAllocator {
	return &ColoredAllocator{next: Base}
}

// Alloc reserves size bytes (<= ColorData) aligned to align, skipping
// stack holes.
func (a *ColoredAllocator) Alloc(size, align uint32) Region {
	if size > ColorData {
		panic(fmt.Sprintf("mem: colored allocation of %d bytes exceeds %d; allocate in chunks", size, ColorData))
	}
	if size == 0 {
		size = 1
	}
	if a.next == 0 {
		a.next = Base
	}
	for {
		p := a.next
		if align > 1 {
			if align&(align-1) != 0 {
				panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
			}
			p = (p + align - 1) &^ (align - 1)
		}
		// Offset within the current color block, relative to Base.
		blockOff := (p - Base) % ColorBlock
		if blockOff+size > ColorData {
			// Would spill into the hole: advance to the next block.
			a.next = p + (ColorBlock - blockOff)
			continue
		}
		a.next = p + size
		return Region{Start: p, Size: size}
	}
}

// InHole reports whether addr lies inside a stack hole — used by tests to
// verify that colored data and stacks never mix.
func InHole(addr uint32) bool {
	if addr < Base {
		return false
	}
	return (addr-Base)%ColorBlock >= ColorData
}
