package sccsim

import (
	"context"
	"testing"
)

// TestSpecMatchesFunctionalOptions: a Spec-built run must be identical
// to the same run composed from functional options — the bridge a
// server depends on.
func TestSpecMatchesFunctionalOptions(t *testing.T) {
	scale := QuickScale()
	spec := Spec{Scale: &scale, ProcsPerCluster: 2, SCCBytes: 32 * 1024, Parallelism: 2}

	got, err := Do(context.Background(), Cholesky, spec.Opts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Do(context.Background(), Cholesky,
		WithScale(scale), WithPoint(2, 32*1024), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Cycles != want.Result.Cycles || got.Result.Refs != want.Result.Refs {
		t.Errorf("Spec run differs: %d/%d cycles/refs vs %d/%d",
			got.Result.Cycles, got.Result.Refs, want.Result.Cycles, want.Result.Refs)
	}
	if got.Config != want.Config {
		t.Errorf("Spec config %v != %v", got.Config, want.Config)
	}
}

// TestSpecZeroValueDefaults: the zero Spec produces no options, hitting
// the facade defaults (paper baseline point).
func TestSpecZeroValueDefaults(t *testing.T) {
	if opts := (Spec{}).Opts(); len(opts) != 0 {
		t.Errorf("zero Spec produced %d options, want 0", len(opts))
	}
	// Partial point: the unset half keeps its default.
	scale := QuickScale()
	pt, err := Do(context.Background(), MP3D, Spec{Scale: &scale, ProcsPerCluster: 4}.Opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Config.ProcsPerCluster != 4 || pt.Config.SCCBytes != 64*1024 {
		t.Errorf("partial point resolved to %v, want 4P/64KB", pt.Config)
	}
}

func TestParseWorkload(t *testing.T) {
	for _, w := range AllWorkloads {
		got, err := ParseWorkload(string(w))
		if err != nil || got != w {
			t.Errorf("ParseWorkload(%q) = %v, %v", w, got, err)
		}
	}
	if _, err := ParseWorkload("fft"); err == nil {
		t.Error("ParseWorkload accepted an unknown workload")
	}
}
