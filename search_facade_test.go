package sccsim

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sccsim/internal/obs"
)

// searchKey identifies a design point across the search and sweep
// result shapes.
type searchKey struct {
	PPC, SCC int
	Cycles   uint64
}

// TestSearchRecoversExhaustiveFrontier is the headline property and
// the PR's acceptance criterion, asserted for every workload on the
// paper grid at quick scale:
//
//  1. the adaptive search's cycles-vs-area frontier equals the
//     exhaustive exact-backend frontier (SweepCtx + Frontier +
//     ParetoFront — the shared extraction), point for point including
//     the exact cycle counts, while simulating strictly fewer points
//     than the feasible space;
//  2. with the cost/performance objective — the paper's closing
//     question — the search finds the exhaustive sweep's best design
//     with at least 60% fewer exact simulations than the full-grid
//     sweep.
func TestSearchRecoversExhaustiveFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload searches")
	}
	ctx := context.Background()
	for _, w := range AllWorkloads {
		w := w
		t.Run(string(w), func(t *testing.T) {
			grid, err := SweepCtx(ctx, w, WithScale(QuickScale()))
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			exhaustive := ParetoFront(Frontier(grid))
			want := make([]searchKey, 0, len(exhaustive))
			for _, p := range exhaustive {
				pt := grid.At(p.SCCBytes, p.ProcsPerCluster)
				want = append(want, searchKey{p.ProcsPerCluster, p.SCCBytes, pt.Result.Cycles})
			}

			res, err := SearchCtx(ctx, w, SearchSpec{}, WithScale(QuickScale()))
			if err != nil {
				t.Fatalf("search: %v", err)
			}
			got := make([]searchKey, 0, len(res.Frontier))
			for _, p := range res.Frontier {
				got = append(got, searchKey{p.PPC, p.SCCBytes, p.Cycles})
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("adaptive frontier %v\nexhaustive frontier %v", got, want)
			}
			feasible := res.Stats.SpaceSize - res.Stats.StaticPruned
			if res.Stats.ExactSims >= feasible {
				t.Errorf("adaptive simulated %d of %d feasible points — no savings",
					res.Stats.ExactSims, feasible)
			}

			cp, err := SearchCtx(ctx, w,
				SearchSpec{Objectives: []SearchObjective{SearchObjectiveCostPerf}},
				WithScale(QuickScale()))
			if err != nil {
				t.Fatalf("cost/perf search: %v", err)
			}
			best := BestDesign(Frontier(grid))
			if best == nil || cp.Best == nil {
				t.Fatal("no best design")
			}
			if cp.Best.PPC != best.ProcsPerCluster || cp.Best.SCCBytes != best.SCCBytes {
				t.Errorf("cost/perf best %d/%d, exhaustive best %d/%d",
					cp.Best.PPC, cp.Best.SCCBytes, best.ProcsPerCluster, best.SCCBytes)
			}
			// The acceptance bound: >= 60% fewer exact simulations than
			// the full-grid exhaustive sweep.
			if 5*cp.Stats.ExactSims > 2*cp.Stats.SpaceSize {
				t.Errorf("cost/perf search ran %d exact sims of a %d-point grid; want <= 40%%",
					cp.Stats.ExactSims, cp.Stats.SpaceSize)
			}
		})
	}
}

// TestSearchSeedDeterminism: a fixed seed makes the random strategy's
// result — and its manifest — identical across runs and parallelism
// levels.
func TestSearchSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exact simulations")
	}
	ctx := context.Background()
	spec := SearchSpec{
		Strategy:   SearchRandom,
		Seed:       7,
		SampleSize: 10,
		Budget:     12,
	}
	run := func(parallel int) (*SearchResult, *obs.Manifest) {
		var buf bytes.Buffer
		res, err := SearchCtx(ctx, MP3D, spec,
			WithScale(QuickScale()), WithParallelism(parallel), WithManifest(&buf))
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var m obs.Manifest
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatalf("parallel=%d manifest: %v", parallel, err)
		}
		return res, &m
	}
	res1, m1 := run(1)
	res8, m8 := run(8)
	if !reflect.DeepEqual(res1, res8) {
		t.Errorf("results differ across parallelism:\n p=1: %+v\n p=8: %+v", res1, res8)
	}
	// The manifests must agree on everything the run determines;
	// CreatedAt (wall clock) and Parallelism (the knob under test) are
	// the only legitimate differences.
	m1.CreatedAt, m8.CreatedAt = "", ""
	m1.Parallelism, m8.Parallelism = 0, 0
	if !reflect.DeepEqual(m1, m8) {
		t.Errorf("manifests differ across parallelism:\n p=1: %+v\n p=8: %+v", m1, m8)
	}

	if m1.Backend != "search" {
		t.Errorf("manifest backend %q, want %q", m1.Backend, "search")
	}
	if m1.Search == nil {
		t.Fatal("manifest has no search stamp")
	}
	if m1.Search.Strategy != string(SearchRandom) || m1.Search.Seed != 7 ||
		m1.Search.Budget != 12 || m1.Search.FrontierSize != len(res1.Frontier) {
		t.Errorf("search stamp %+v does not echo the spec/result", m1.Search)
	}
	if len(m1.Points) != len(res1.Frontier) {
		t.Errorf("manifest has %d points, frontier has %d", len(m1.Points), len(res1.Frontier))
	}
	for i, p := range res1.Frontier {
		rec := m1.Points[i]
		if rec.ProcsPerCluster != p.PPC || rec.SCCBytes != p.SCCBytes || rec.Cycles != p.Cycles {
			t.Errorf("manifest point %d = %+v, frontier point %+v", i, rec, p)
		}
		if rec.WallNanos != 0 {
			t.Errorf("manifest point %d has wall time %d; search manifests are deterministic", i, rec.WallNanos)
		}
	}
	if res1.Stats.ExactSims > 12 {
		t.Errorf("budget 12 exceeded: %d exact sims", res1.Stats.ExactSims)
	}
}

// TestSearchSpecRoundTripEveryField: a fully-populated SearchSpec
// survives JSON round-tripping — the serve layer's digest and request
// decoding depend on it.
func TestSearchSpecRoundTripEveryField(t *testing.T) {
	spec := SearchSpec{
		Space: SearchSpace{
			ProcsPerCluster: []int{2, 4},
			SCCBytes:        []int{8192, 32768},
		},
		Objectives:  []SearchObjective{SearchObjectiveCycles, SearchObjectiveArea, SearchObjectiveCostPerf},
		Constraints: []SearchConstraint{{Metric: "area_mm2", Max: 900}, {Metric: "cycles", Min: 1, Max: 1e12}},
		Strategy:    SearchAdaptive,
		Budget:      64,
		Margin:      0.25,
		Seed:        42,
		SampleSize:  128,
		LocalRounds: 2,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back SearchSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip changed the spec:\n sent %+v\n got  %+v", spec, back)
	}
	for _, key := range []string{`"space"`, `"objectives"`, `"constraints"`, `"strategy"`,
		`"budget"`, `"margin"`, `"seed"`, `"sample_size"`, `"local_rounds"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshalled spec lacks %s: %s", key, data)
		}
	}

	// The range form round-trips too.
	rng := SearchSpec{Space: SearchSpace{SCCBytesMin: 4096, SCCBytesMax: 65536, SCCBytesStep: 4096}}
	data, err = json.Marshal(rng)
	if err != nil {
		t.Fatal(err)
	}
	back = SearchSpec{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rng, back) {
		t.Errorf("range spec round trip changed: sent %+v got %+v", rng, back)
	}
}

// TestSearchOptionValidation: options the batched search pipeline
// cannot honor fail fast with actionable errors, before any
// simulation.
func TestSearchOptionValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		opts    []Opt
		wantErr string
	}{
		{"analytic backend", []Opt{WithBackend(BackendAnalytic)}, "both backends"},
		{"sim options", []Opt{WithSimOptions(Options{})}, "WithSimOptions"},
		{"trace export", []Opt{WithTraceExport(&bytes.Buffer{})}, "WithTraceExport"},
		{"pinned config", []Opt{WithConfig(DefaultConfig(2, 32768))}, "WithConfig"},
		{"unknown backend", []Opt{WithBackend("fast")}, "unknown backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := SearchCtx(ctx, BarnesHut, SearchSpec{}, tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("SearchCtx: err %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	// A bad spec fails before any backend work too.
	_, err := SearchCtx(ctx, BarnesHut, SearchSpec{Space: SearchSpace{SCCBytes: []int{100}}})
	if err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Errorf("bad space: err %v, want line-alignment error", err)
	}
}

// TestSearchProgressMeter: the live progress hook sees the triage
// stage and monotone exact-simulation counts.
func TestSearchProgressMeter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exact simulations")
	}
	var events []SearchProgress
	_, err := SearchCtx(context.Background(), MP3D, SearchSpec{},
		WithScale(QuickScale()),
		WithSearchProgress(func(p SearchProgress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	phases := map[string]bool{}
	last := 0
	for _, e := range events {
		phases[e.Phase] = true
		if e.ExactSims < last {
			t.Errorf("exact sim count went backwards: %v", events)
		}
		last = e.ExactSims
	}
	if !phases["triage"] || !phases["exact"] {
		t.Errorf("progress phases %v, want triage and exact", phases)
	}
}
