package sccsim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestBackendValidation: every option combination the analytic backend
// cannot honor — and every unknown backend name — fails fast with an
// actionable error, before any simulation work.
func TestBackendValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		opts    []Opt
		wantErr string
	}{
		{"unknown backend", []Opt{WithBackend("simulate")}, "unknown backend"},
		{"unknown backend lists values", []Opt{WithBackend("fast")}, "[exact analytic]"},
		{"verify needs exact", []Opt{WithBackend(BackendAnalytic), WithVerify()}, "exact backend"},
		{"sim options need exact", []Opt{WithBackend(BackendAnalytic), WithSimOptions(Options{})}, "exact backend"},
		{"trace export needs exact", []Opt{WithBackend(BackendAnalytic), WithTraceExport(&bytes.Buffer{})}, "exact backend"},
		{"order independent", []Opt{WithVerify(), WithBackend(BackendAnalytic)}, "exact backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Do(ctx, BarnesHut, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Do: err %v, want substring %q", err, tc.wantErr)
			}
			if _, err := SweepCtx(ctx, BarnesHut, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("SweepCtx: err %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if _, err := BuildCostPerfEntryCtx(ctx, BarnesHut, WithBackend(BackendAnalytic)); err == nil ||
		!strings.Contains(err.Error(), "exact backend") {
		t.Errorf("BuildCostPerfEntryCtx on analytic: err %v", err)
	}
}

// TestAnalyticSweepManifest: an analytic sweep flows through the same
// manifest machinery and stamps the backend at both the manifest and
// point level.
func TestAnalyticSweepManifest(t *testing.T) {
	var buf bytes.Buffer
	var rep SweepReport
	g, err := SweepCtx(context.Background(), MP3D,
		WithScale(QuickScale()), WithBackend(BackendAnalytic),
		WithManifest(&buf), WithSweepReport(func(r SweepReport) { rep = r }))
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || len(g.Points) == 0 {
		t.Fatal("analytic sweep returned no grid")
	}
	if rep.Backend != BackendAnalytic {
		t.Errorf("sweep report backend %q", rep.Backend)
	}
	var m RunManifest
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Backend != string(BackendAnalytic) {
		t.Errorf("manifest backend %q, want %q", m.Backend, BackendAnalytic)
	}
	for _, pt := range m.Points {
		if pt.Backend != string(BackendAnalytic) {
			t.Fatalf("point %dP/%dB backend %q", pt.ProcsPerCluster, pt.SCCBytes, pt.Backend)
		}
		if pt.Cycles == 0 || pt.ReadMissRate <= 0 {
			t.Fatalf("empty analytic point in manifest: %+v", pt)
		}
	}
}

// TestAnalyticDoMatchesSweep: Do on the analytic backend agrees with
// the corresponding sweep cell, exactly as the exact backend does.
func TestAnalyticDoMatchesSweep(t *testing.T) {
	ctx := context.Background()
	scale := QuickScale()
	pt, err := Do(ctx, BarnesHut, WithScale(scale), WithPoint(4, 128*1024), WithBackend(BackendAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	g, err := SweepCtx(ctx, BarnesHut, WithScale(scale), WithBackend(BackendAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	cell := g.At(128*1024, 4)
	if cell == nil {
		t.Fatal("sweep grid misses 4P/128KB")
	}
	if pt.Result.Cycles != cell.Result.Cycles || pt.Result.ReadMissRate() != cell.Result.ReadMissRate() {
		t.Errorf("Do %d/%.5f != sweep %d/%.5f",
			pt.Result.Cycles, pt.Result.ReadMissRate(), cell.Result.Cycles, cell.Result.ReadMissRate())
	}
	// Multiprog on the analytic backend lands on one cluster, like Do's
	// exact path.
	mp, err := Do(ctx, Multiprog, WithScale(scale), WithBackend(BackendAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	if mp.Config.Clusters != 1 {
		t.Errorf("analytic multiprog ran on %d clusters", mp.Config.Clusters)
	}
}
