// Spec: the declarative counterpart of the functional options. Servers
// and config-file loaders receive experiment configuration as data (a
// decoded JSON body, a parsed file), not as a composed []Opt; Spec is
// the plain struct they populate and convert with Opts — one place that
// maps data to options, so the HTTP service and any future batch runner
// cannot drift from the facade's defaults.
package sccsim

import "sccsim/internal/explorer"

// Spec is a declarative experiment configuration: every knob of
// Do/SweepCtx/BuildCostPerfEntryCtx as one plain struct. The zero value
// means the same defaults as calling those functions with no options
// (paper scale, the paper's simulator model, the 1P/64KB point,
// GOMAXPROCS parallelism). Convert with Opts, appending any runtime
// options (WithProgress, WithMetrics, WithSweepReport) that cannot be
// expressed as data.
type Spec struct {
	// Scale overrides the problem sizes (nil: PaperScale).
	Scale *Scale
	// Sim overrides the simulator options (nil: the paper's model).
	Sim *Options
	// Config pins an arbitrary design point; when set it wins over
	// ProcsPerCluster/SCCBytes (the WithConfig-over-WithPoint rule).
	Config *Config
	// ProcsPerCluster and SCCBytes name a design point on the paper's
	// default system for Do; a zero field keeps its default (1 processor
	// per cluster, 64 KB).
	ProcsPerCluster int
	SCCBytes        int
	// Axes overlays architecture-axis overrides — line size,
	// associativity, replacement policy, hierarchy, hybrid L1 size — on
	// every configuration the experiment builds (nil or zero: the
	// paper's defaults, byte-identical grids). The analytic backend
	// models associativity only; other non-default axes fail Validate.
	Axes *Axes
	// Parallelism bounds the sweep engine's worker pool (0: GOMAXPROCS).
	Parallelism int
	// TraceCacheDir roots the persistent on-disk trace cache ("" : none).
	TraceCacheDir string
	// Verify attaches the coherence invariant checker to every run.
	// Exact backend only.
	Verify bool
	// Backend selects the result-producing strategy: "exact" (the cycle
	// simulator), "analytic" (the reuse-distance model), or "" for the
	// default (exact). Unknown values fail with an error listing the
	// valid names — at Validate, or at run time through Opts.
	Backend string
	// Cluster, when set with a non-empty worker list, shards sweep
	// execution across those sccserve workers (WithCluster over an
	// HTTPCluster). Exact backend only; single points and analytic
	// sweeps ignore it.
	Cluster *ClusterSpec
}

// Validate checks the spec's data-borne fields without running
// anything: an unknown Backend, or a combination the chosen backend
// cannot honor (simulator options or Verify with the analytic model),
// returns an actionable error. Servers call this before admitting a
// request so bad input fails their 4xx path, not the run.
func (s Spec) Validate() error {
	_, err := resolve(s.Opts())
	return err
}

// Opts converts the spec to the equivalent functional options.
func (s Spec) Opts() []Opt {
	var o []Opt
	if s.Scale != nil {
		o = append(o, WithScale(*s.Scale))
	}
	if s.Sim != nil {
		o = append(o, WithSimOptions(*s.Sim))
	}
	switch {
	case s.Config != nil:
		o = append(o, WithConfig(*s.Config))
	case s.ProcsPerCluster != 0 || s.SCCBytes != 0:
		ppc, scc := s.ProcsPerCluster, s.SCCBytes
		if ppc == 0 {
			ppc = 1
		}
		if scc == 0 {
			scc = 64 * 1024
		}
		o = append(o, WithPoint(ppc, scc))
	}
	if s.Axes != nil && !s.Axes.IsZero() {
		o = append(o, WithAxes(*s.Axes))
	}
	if s.Parallelism != 0 {
		o = append(o, WithParallelism(s.Parallelism))
	}
	if s.TraceCacheDir != "" {
		o = append(o, WithTraceCache(s.TraceCacheDir))
	}
	if s.Verify {
		o = append(o, WithVerify())
	}
	if s.Cluster != nil && len(s.Cluster.Workers) > 0 {
		o = append(o, WithCluster(NewHTTPCluster(*s.Cluster)))
	}
	if s.Backend != "" {
		// The raw string converts unchecked; resolve validates it with
		// the same error ParseBackend gives, so data-driven callers see
		// the actionable message wherever the spec is first used.
		o = append(o, WithBackend(Backend(s.Backend)))
	}
	return o
}

// ParseWorkload maps a workload name ("barnes-hut", "mp3d", "cholesky",
// "multiprog") to its Workload, validating it against AllWorkloads —
// the boundary check for callers that receive workload names as
// strings.
func ParseWorkload(name string) (Workload, error) {
	return explorer.ParseWorkload(name)
}
