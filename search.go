// Adaptive design-space search: the facade wiring that answers the
// paper's closing question ("what should the ratio of processors to
// cache memory size be?") over spaces far larger than the paper's 8x4
// grid without exhaustively simulating them. SearchCtx drives the
// internal/search pipeline — static constraint pruning, analytic
// triage through the reuse-distance curve, successive halving with
// early abandonment, exact confirmation of the survivors — against
// both backends at once: the analytic model ranks, the exact simulator
// confirms. The headline contract: the same exact-backend Pareto
// frontier as an exhaustive sweep, at a fraction of the exact
// simulations.
package sccsim

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"sccsim/internal/explorer"
	"sccsim/internal/obs"
	"sccsim/internal/search"
)

// SearchSpec declares one search: the candidate space, the objectives
// to minimize, hard constraints, and the strategy/budget/seed knobs.
// The zero value searches the paper's grid for the cycles-vs-area
// frontier adaptively. See internal/search.Spec for field semantics.
type SearchSpec = search.Spec

// SearchSpace is the candidate design-point space: explicit axis lists
// or a size range, defaulting to the paper's sweep axes.
type SearchSpace = search.Space

// SearchCandidate is one (processors per cluster, SCC size) candidate.
type SearchCandidate = search.Candidate

// SearchConstraint is one hard constraint on a candidate metric
// (cycles, area_mm2, cluster_mm2, scc_bytes, procs_per_cluster,
// cost_perf); zero Min/Max bounds are open.
type SearchConstraint = search.Constraint

// SearchObjective names a minimization objective.
type SearchObjective = search.Objective

// The search objectives: adjusted execution cycles, system silicon
// area, and (negated, so smaller is better) cost/performance.
const (
	SearchObjectiveCycles   = search.ObjectiveCycles
	SearchObjectiveArea     = search.ObjectiveArea
	SearchObjectiveCostPerf = search.ObjectiveCostPerf
)

// SearchStrategy names a search strategy.
type SearchStrategy = search.Strategy

// The strategies: auto picks adaptive, or random sampling plus local
// search when the space is too large to triage exhaustively;
// exhaustive is the reference strategy that simulates every feasible
// candidate.
const (
	SearchAuto       = search.StrategyAuto
	SearchExhaustive = search.StrategyExhaustive
	SearchAdaptive   = search.StrategyAdaptive
	SearchRandom     = search.StrategyRandom
)

// SearchResult is a completed search: the exact-confirmed Pareto
// frontier, the best cost/performance point, every simulated point,
// and the per-stage accounting.
type SearchResult = search.Result

// SearchStats is the per-stage accounting of one search.
type SearchStats = search.Stats

// SearchPoint is one exact-confirmed, Section 4-priced design point.
type SearchPoint = search.PointResult

// SearchProgress is one live update from a running search.
type SearchProgress = search.Progress

// WithSearchProgress installs a live progress hook on SearchCtx,
// called serially as the pipeline stages advance (triage counts, then
// exact-simulation rounds). Sweeps ignore it; see WithProgress for the
// per-point sweep hook.
func WithSearchProgress(fn func(SearchProgress)) Opt {
	return func(c *expCfg) { c.searchProgress = fn }
}

// DefaultSearchMargin returns the calibrated analytic-triage margin
// for a workload: the relative error bound the pruning stages assume
// when comparing reuse-distance cycle estimates against exact results.
// The values cover the measured estimate error on the paper grid with
// headroom (the calibration is recorded on searchMargins);
// SearchSpec.Margin overrides them.
func DefaultSearchMargin(w Workload) float64 {
	if m, ok := searchMargins[string(w)]; ok {
		return m
	}
	return 0.35
}

// searchMargins holds the per-workload triage margins. Calibration:
// max |exact-est|/est over the feasible paper grid at QuickScale was
// barnes-hut 0.39 (bank contention under sharing, which the analytic
// model leaves out), mp3d 0.07, cholesky 0.06, multiprog 0.11; each
// margin is that error with generous headroom.
var searchMargins = map[string]float64{
	string(BarnesHut): 0.50,
	string(MP3D):      0.18,
	string(Cholesky):  0.18,
	string(Multiprog): 0.22,
}

// searchEvaluator adapts the explorer's batch entry points to the
// search pipeline's Evaluator: analytic estimates come from the shared
// reuse-distance curves, exact confirmations run on the concurrent
// sweep engine (in-order results keep the runner deterministic at any
// parallelism).
type searchEvaluator struct {
	w     Workload
	scale Scale
	sim   Options
	eng   explorer.EngineOptions
}

func searchPointSpecs(cands []search.Candidate) []explorer.PointSpec {
	specs := make([]explorer.PointSpec, len(cands))
	for i, c := range cands {
		specs[i] = explorer.PointSpec{PPC: c.PPC, SCCBytes: c.SCCBytes}
	}
	return specs
}

func (e *searchEvaluator) Estimate(ctx context.Context, cands []search.Candidate) ([]uint64, error) {
	return explorer.EstimatePoints(ctx, e.w, searchPointSpecs(cands), e.scale, e.eng.TraceCache)
}

func (e *searchEvaluator) Exact(ctx context.Context, cands []search.Candidate) ([]uint64, error) {
	pts, err := explorer.RunPointsCtx(ctx, e.w, searchPointSpecs(cands), e.scale, e.sim, e.eng)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(pts))
	for i, p := range pts {
		out[i] = p.Result.Cycles
	}
	return out, nil
}

// SearchCtx searches a workload's design space for the spec's
// objective frontier. The pipeline prunes statically infeasible
// candidates, ranks the rest with the analytic reuse-distance model,
// and confirms survivors on the exact simulator by successive halving
// — so the returned frontier contains only exact-simulated points
// while most of the space never reaches the simulator. A fixed
// SearchSpec.Seed makes the result identical across runs and
// WithParallelism values.
//
// SearchCtx composes with the scale, parallelism, trace-cache,
// verification and observability options. It drives both backends
// itself, so WithBackend(BackendAnalytic) is rejected, as are the
// simulator-tuning and trace-export options (WithSimOptions,
// WithTraceExport) whose per-run artifacts the batched pipeline cannot
// honor. With WithManifest the run writes a versioned manifest whose
// points are the confirmed frontier and whose Search stamp records the
// strategy, budget, seed and per-stage accounting.
func SearchCtx(ctx context.Context, w Workload, spec SearchSpec, opts ...Opt) (res *SearchResult, err error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.backend == BackendAnalytic {
		return nil, fmt.Errorf("sccsim: search drives both backends itself (analytic triage, exact confirmation); drop WithBackend")
	}
	if c.simSet {
		return nil, fmt.Errorf("sccsim: WithSimOptions tunes individual simulations; the search pipeline batches them — run Do on the chosen point instead")
	}
	if c.traceW != nil {
		return nil, fmt.Errorf("sccsim: WithTraceExport records one run's timeline; the search pipeline batches runs — export a trace from Do on the chosen point instead")
	}
	if c.cfg != nil {
		return nil, fmt.Errorf("sccsim: WithConfig pins a single design point; the search explores a space — use SearchSpec.Space")
	}
	// Architecture axes: the spec's axes win over WithAxes; either way
	// both the runner (which decides whether analytic triage is sound)
	// and the exact evaluator (which builds the configurations) see the
	// same resolved axes.
	if spec.Axes != nil && !spec.Axes.IsZero() {
		c.axes = *spec.Axes
		if err := c.axes.Validate(); err != nil {
			return nil, err
		}
	} else if !c.axes.IsZero() {
		a := c.axes
		spec.Axes = &a
	}
	c.sim.Metrics = c.metrics
	eng, err := c.engine()
	if err != nil {
		return nil, err
	}
	// The engine's sweep-level telemetry hooks describe one grid sweep;
	// a search runs many small batches, so they stay off here.
	eng.Report = nil

	if c.logger != nil {
		c.logger.Info("search start", "workload", string(w), "strategy", string(spec.Strategy))
		defer func(begin time.Time) {
			if err != nil {
				c.logger.Error("search failed", "workload", string(w),
					"err", err.Error(), "dur_ms", time.Since(begin).Milliseconds())
			}
		}(time.Now())
	}

	clusters := 4
	if w == Multiprog {
		clusters = 1
	}
	r := &search.Runner{
		Eval:          &searchEvaluator{w: w, scale: c.scale, sim: c.sim, eng: eng},
		Workload:      string(w),
		Clusters:      clusters,
		DefaultMargin: DefaultSearchMargin(w),
		Metrics:       c.metrics,
		Logger:        c.logger,
		Progress:      c.searchProgress,
	}
	res, err = r.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	if c.manifestW != nil {
		m, merr := buildSearchManifest(w, c, spec, res)
		if merr != nil {
			return nil, merr
		}
		if merr := obs.WriteManifest(c.manifestW, m); merr != nil {
			return nil, merr
		}
	}
	return res, nil
}

// buildSearchManifest assembles the run manifest of a completed
// search: the confirmed frontier as the point records (deterministic —
// no wall times) and the strategy/stage accounting as the Search
// stamp.
func buildSearchManifest(w Workload, c expCfg, spec SearchSpec, res *SearchResult) (*RunManifest, error) {
	ppcs, sizes, err := spec.Space.Axes()
	if err != nil {
		return nil, err
	}
	m := &RunManifest{
		Version:   obs.ManifestVersion,
		Tool:      "sccsim",
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host: obs.Host{
			OS: runtime.GOOS, Arch: runtime.GOARCH,
			CPUs: runtime.NumCPU(), GoVersion: runtime.Version(),
		},
		Workload:    string(w),
		Backend:     "search",
		RequestID:   c.requestID,
		Scale:       c.scale,
		Parallelism: c.parallelism,
		Grid:        obs.GridAxes{SCCBytes: sizes, ProcsPerCluster: ppcs},
	}
	agg := obs.Aggregate{}
	for _, p := range res.Frontier {
		rec := obs.PointRecord{
			ProcsPerCluster: p.PPC,
			SCCBytes:        p.SCCBytes,
			Clusters:        p.Clusters,
			Backend:         string(BackendExact),
			Cycles:          p.Cycles,
		}
		m.Points = append(m.Points, rec)
		agg.Points++
		if agg.BestCycles == 0 || rec.Cycles < agg.BestCycles {
			agg.BestCycles = rec.Cycles
		}
		if rec.Cycles > agg.WorstCycles {
			agg.WorstCycles = rec.Cycles
		}
	}
	m.Aggregate = agg
	st := res.Stats
	m.Search = &obs.SearchStamp{
		Strategy:      st.Strategy,
		Budget:        st.Budget,
		Seed:          st.Seed,
		Margin:        st.Margin,
		SpaceSize:     st.SpaceSize,
		StaticPruned:  st.StaticPruned,
		TriagePruned:  st.TriagePruned,
		Plausible:     st.Plausible,
		Sampled:       st.Sampled,
		AnalyticEvals: st.AnalyticEvals,
		ExactSims:     st.ExactSims,
		Abandoned:     st.Abandoned,
		Rounds:        st.Rounds,
		FrontierSize:  len(res.Frontier),
	}
	if c.metrics != nil {
		m.Metrics = c.metrics.Snapshot()
	}
	return m, nil
}
