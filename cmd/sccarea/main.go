// Command sccarea prints the implementation-cost model of Section 4 of
// the paper: the four cluster chip designs with their component
// breakdowns (Figures 8-11), and the FO4 cache-access-time model that
// determines the load latencies.
//
// Usage:
//
//	sccarea            # the four designs
//	sccarea -access    # cache access time vs size in FO4 delays
package main

import (
	"flag"
	"fmt"

	"sccsim"
	"sccsim/internal/area"
)

func main() {
	access := flag.Bool("access", false, "print the cache access-time model")
	flag.Parse()

	if *access {
		fmt.Printf("direct-mapped cache access time (cycle budget %.0f FO4):\n", area.CycleFO4)
		for size := 4 * 1024; size <= 512*1024; size *= 2 {
			fo4 := area.CacheAccessFO4(size)
			note := ""
			if fo4 > area.CycleFO4 {
				note = "  (exceeds one cycle)"
			}
			fmt.Printf("  %4d KB  %5.1f FO4%s\n", size/1024, fo4, note)
		}
		fmt.Printf("largest single-cycle cache: %d KB\n", area.MaxSingleCycleCache()/1024)
		fmt.Printf("SCC bank arbitration: %.0f FO4 -> extra pipeline stage (3-cycle loads)\n",
			area.ArbitrationFO4)
		return
	}
	fmt.Print(sccsim.RenderAreaReport())
}
