// Command sccarea prints the implementation-cost model of Section 4 of
// the paper: the four cluster chip designs with their component
// breakdowns (Figures 8-11), and the FO4 cache-access-time model that
// determines the load latencies.
//
// Usage:
//
//	sccarea            # the four designs
//	sccarea -access    # cache access time vs size in FO4 delays
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sccsim"
	"sccsim/internal/area"
)

// stdout receives the report; stderr receives usage errors. Variables
// so tests can capture both streams.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli is the whole command behind main, parameterized for tests: it
// parses args, prints, and returns the process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("sccarea", flag.ContinueOnError)
	fs.SetOutput(stderr)
	access := fs.Bool("access", false, "print the cache access-time model")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "usage: sccarea [-access]\n")
		return 2
	}

	if *access {
		fmt.Fprintf(stdout, "direct-mapped cache access time (cycle budget %.0f FO4):\n", area.CycleFO4)
		for size := 4 * 1024; size <= 512*1024; size *= 2 {
			fo4 := area.CacheAccessFO4(size)
			note := ""
			if fo4 > area.CycleFO4 {
				note = "  (exceeds one cycle)"
			}
			fmt.Fprintf(stdout, "  %4d KB  %5.1f FO4%s\n", size/1024, fo4, note)
		}
		fmt.Fprintf(stdout, "largest single-cycle cache: %d KB\n", area.MaxSingleCycleCache()/1024)
		fmt.Fprintf(stdout, "SCC bank arbitration: %.0f FO4 -> extra pipeline stage (3-cycle loads)\n",
			area.ArbitrationFO4)
		return 0
	}
	fmt.Fprint(stdout, sccsim.RenderAreaReport())
	return 0
}
