package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// runCLI runs the command in-process with stdout/stderr captured.
func runCLI(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var o, e bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &o, &e
	defer func() { stdout, stderr = oldOut, oldErr }()
	code = cli(args)
	return code, o.String(), e.String()
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update. The area model is pure arithmetic on paper constants,
// so its rendered output is exactly reproducible — any diff is a real
// model change and should be reviewed as one.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./cmd/sccarea -update`)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (regenerate with `go test ./cmd/sccarea -update`):\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func TestAreaReportGolden(t *testing.T) {
	code, out, errOut := runCLI(t)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if errOut != "" {
		t.Errorf("diagnostics leaked into stderr:\n%s", errOut)
	}
	checkGolden(t, "report.golden", out)
}

func TestAccessModelGolden(t *testing.T) {
	code, out, errOut := runCLI(t, "-access")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if errOut != "" {
		t.Errorf("diagnostics leaked into stderr:\n%s", errOut)
	}
	checkGolden(t, "access.golden", out)
}

func TestUsageErrorsGoToStderr(t *testing.T) {
	code, out, errOut := runCLI(t, "extra-arg")
	if code != 2 {
		t.Fatalf("stray argument exited %d, want 2", code)
	}
	if out != "" {
		t.Errorf("usage error wrote to stdout: %q", out)
	}
	if !strings.Contains(errOut, "usage: sccarea") {
		t.Errorf("usage message missing from stderr: %q", errOut)
	}
}
