// Command benchcompare diffs two sweep run manifests (see
// obs.Manifest / `make bench-json`) point by point and fails when the
// candidate regresses on performance. It is the enforcement half of the
// committed BENCH_sweep.json — `make bench-compare` regenerates the
// manifest and runs this against the committed baseline, so a PR that
// slows the simulator down fails loudly instead of silently rewriting
// the baseline.
//
// Every point's sim_cycles_per_us and wall_ns deltas are printed. The
// failure criterion is robust to single-point scheduler noise (per-point
// wall times at quick scale jitter by tens of percent on a loaded
// machine): the gate trips when the MEDIAN per-point throughput ratio
// drops more than -threshold, or when any single point drops more than
// three times the threshold, or when grid points are missing.
//
// A missing or unparsable manifest is a hard error (exit 2), with a
// hint to regenerate it — comparing against an absent baseline must
// never pass. So is a pair of manifests with no comparable throughput
// samples at all: a comparison that compared nothing is a failure, not
// a success.
//
// Simulation *results* (cycles, refs) are compared too: a mismatch is
// reported as a warning, because it usually means the workloads or the
// model changed — legitimate in a PR that says so, alarming otherwise.
//
// Usage:
//
//	benchcompare [-threshold 0.10] baseline.json candidate.json
//
// Exit status: 0 when within threshold, 1 on regression, mismatched
// grids, or nothing comparable, 2 on usage or read errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"

	"sccsim/internal/obs"
)

// stdout receives the point-by-point report; stderr receives usage and
// read errors. Variables so tests can capture both streams.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

type pointKey struct {
	clusters, ppc, sccBytes int
}

func readManifest(path string) (*obs.Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%s does not exist — run `make bench-json` to generate it", path)
		}
		return nil, err
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s is not a sweep manifest (%v) — regenerate it with `make bench-json`", path, err)
	}
	if len(m.Points) == 0 {
		return nil, fmt.Errorf("%s is a manifest with no points — regenerate it with `make bench-json`", path)
	}
	return &m, nil
}

func index(m *obs.Manifest) map[pointKey]obs.PointRecord {
	idx := make(map[pointKey]obs.PointRecord, len(m.Points))
	for _, p := range m.Points {
		idx[pointKey{p.Clusters, p.ProcsPerCluster, p.SCCBytes}] = p
	}
	return idx
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli is the whole command behind main, parameterized for tests: it
// parses args, compares, and returns the process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10,
		"tolerated median throughput regression (0.10 = 10%); any single point may lose up to 3x this")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchcompare [-threshold 0.10] baseline.json candidate.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := readManifest(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchcompare: baseline:", err)
		return 2
	}
	cand, err := readManifest(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchcompare: candidate:", err)
		return 2
	}

	baseIdx, candIdx := index(base), index(cand)
	keys := make([]pointKey, 0, len(baseIdx))
	for k := range baseIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.sccBytes != b.sccBytes {
			return a.sccBytes < b.sccBytes
		}
		if a.ppc != b.ppc {
			return a.ppc < b.ppc
		}
		return a.clusters < b.clusters
	})

	severeFloor := 1 - 3*(*threshold)
	failures, warnings := 0, 0
	var ratios []float64
	for _, k := range keys {
		b := baseIdx[k]
		c, ok := candIdx[k]
		if !ok {
			fmt.Fprintf(stdout, "MISSING  scc=%-8d ppc=%-2d clusters=%d: point absent from candidate\n",
				k.sccBytes, k.ppc, k.clusters)
			failures++
			continue
		}
		if c.Cycles != b.Cycles || c.Refs != b.Refs {
			fmt.Fprintf(stdout, "WARN     scc=%-8d ppc=%-2d clusters=%d: results changed "+
				"(cycles %d -> %d, refs %d -> %d) — model or workload change?\n",
				k.sccBytes, k.ppc, k.clusters, b.Cycles, c.Cycles, b.Refs, c.Refs)
			warnings++
		}
		if b.SimCyclesPerMicro <= 0 || c.SimCyclesPerMicro <= 0 {
			continue
		}
		ratio := c.SimCyclesPerMicro / b.SimCyclesPerMicro
		ratios = append(ratios, ratio)
		tag := "ok      "
		switch {
		case ratio < severeFloor:
			tag = "SEVERE  "
			failures++
		case ratio < 1-*threshold:
			tag = "slower  "
		}
		if tag != "ok      " {
			fmt.Fprintf(stdout, "%s scc=%-8d ppc=%-2d clusters=%d: "+
				"%.2f -> %.2f sim_cycles/us (%+.0f%%), wall %.2fms -> %.2fms\n",
				tag, k.sccBytes, k.ppc, k.clusters,
				b.SimCyclesPerMicro, c.SimCyclesPerMicro, (ratio-1)*100,
				float64(b.WallNanos)/1e6, float64(c.WallNanos)/1e6)
		}
	}
	for k := range candIdx {
		if _, ok := baseIdx[k]; !ok {
			fmt.Fprintf(stdout, "NOTE     scc=%-8d ppc=%-2d clusters=%d: new point not in baseline\n",
				k.sccBytes, k.ppc, k.clusters)
		}
	}

	// No common point carried a throughput sample on both sides: this
	// "comparison" compared nothing. A zeroed or foreign baseline would
	// otherwise sail through (median of an empty set is 0, below no
	// floor), turning the gate into a no-op.
	if len(ratios) == 0 {
		fmt.Fprintf(stdout, "EMPTY    no comparable throughput samples between the manifests — "+
			"regenerate the baseline with `make bench-json`\n")
		failures++
	}

	med := median(ratios)
	if med > 0 && med < 1-*threshold {
		fmt.Fprintf(stdout, "REGRESS  median throughput ratio %.2fx is below %.2fx\n", med, 1-*threshold)
		failures++
	}
	fmt.Fprintf(stdout, "benchcompare: %d points, median throughput ratio %.2fx, "+
		"%d failure(s), %d result warning(s)\n", len(keys), med, failures, warnings)
	if failures > 0 {
		return 1
	}
	return 0
}
