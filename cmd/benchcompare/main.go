// Command benchcompare diffs two sweep run manifests (see
// obs.Manifest / `make bench-json`) point by point and fails when the
// candidate regresses on performance. It is the enforcement half of the
// committed BENCH_sweep.json — `make bench-compare` regenerates the
// manifest and runs this against the committed baseline, so a PR that
// slows the simulator down fails loudly instead of silently rewriting
// the baseline.
//
// Every point's sim_cycles_per_us and wall_ns deltas are printed. The
// failure criterion is robust to single-point scheduler noise (per-point
// wall times at quick scale jitter by tens of percent on a loaded
// machine): the gate trips when the MEDIAN per-point throughput ratio
// drops more than -threshold, or when any single point drops more than
// -severe-mult times the threshold (default three), or when grid points
// are missing. Points
// whose wall time is under 2ms on either side are excluded from the
// throughput ratios entirely — at that duration the "measurement" is
// scheduler jitter (analytic-backend points run in microseconds); their
// presence and simulation results are still checked.
//
// A missing or unparsable manifest is a hard error (exit 2), with a
// hint to regenerate it — comparing against an absent baseline must
// never pass. So is a pair of manifests with no comparable throughput
// samples at all: a comparison that compared nothing is a failure, not
// a success.
//
// Simulation *results* (cycles, refs) are compared too: a mismatch is
// reported as a warning, because it usually means the workloads or the
// model changed — legitimate in a PR that says so, alarming otherwise.
//
// Points are keyed by (backend, clusters, procs, cache size): a
// manifest may carry both exact-simulator and analytic-model sweeps of
// the same grid, and each backend's throughput is tracked separately.
// Points without a backend stamp (manifests from before the backend
// API) count as "exact".
//
// -merge combines several single-sweep manifests into one baseline —
// `make bench-json` uses it to commit the exact and analytic sweeps of
// the benchmark workload as a single BENCH_sweep.json. Merging two
// manifests that contain the same (backend, point) is an error.
//
// Usage:
//
//	benchcompare [-threshold 0.10] baseline.json candidate.json
//	benchcompare -merge OUT.json in1.json in2.json...
//
// Exit status: 0 when within threshold, 1 on regression, mismatched
// grids, or nothing comparable, 2 on usage or read errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"

	"sccsim/internal/obs"
)

// stdout receives the point-by-point report; stderr receives usage and
// read errors. Variables so tests can capture both streams.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

type pointKey struct {
	backend                 string
	clusters, ppc, sccBytes int
}

// minComparableWallNanos is the throughput noise floor: a point that
// ran for less than this on either side carries no timing signal, only
// scheduler jitter, and stays out of the ratio set.
const minComparableWallNanos = 2_000_000

// normBackend maps a point's backend stamp to its comparison key:
// manifests written before the backend API carry no stamp and were all
// produced by the exact simulator.
func normBackend(b string) string {
	if b == "" {
		return "exact"
	}
	return b
}

func readManifest(path string) (*obs.Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%s does not exist — run `make bench-json` to generate it", path)
		}
		return nil, err
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s is not a sweep manifest (%v) — regenerate it with `make bench-json`", path, err)
	}
	if len(m.Points) == 0 {
		return nil, fmt.Errorf("%s is a manifest with no points — regenerate it with `make bench-json`", path)
	}
	return &m, nil
}

func index(m *obs.Manifest) map[pointKey]obs.PointRecord {
	idx := make(map[pointKey]obs.PointRecord, len(m.Points))
	for _, p := range m.Points {
		idx[keyOf(m, p)] = p
	}
	return idx
}

// keyOf builds a point's comparison key, falling back to the
// manifest-level backend when the point predates per-point stamps.
func keyOf(m *obs.Manifest, p obs.PointRecord) pointKey {
	b := p.Backend
	if b == "" {
		b = m.Backend
	}
	return pointKey{normBackend(b), p.Clusters, p.ProcsPerCluster, p.SCCBytes}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// mergeManifests concatenates the points of several sweep manifests
// into one, stamping each point with its source manifest's backend if
// it carries none of its own. The merged document keeps the first
// input's header; a (backend, point) collision across inputs is a hard
// error — it means the same sweep was merged twice, and silently
// keeping either copy would corrupt the baseline.
func mergeManifests(out string, inputs []string) int {
	if len(inputs) < 1 {
		fmt.Fprintln(stderr, "benchcompare: -merge needs at least one input manifest")
		return 2
	}
	var merged *obs.Manifest
	seen := map[pointKey]string{}
	for _, path := range inputs {
		m, err := readManifest(path)
		if err != nil {
			fmt.Fprintln(stderr, "benchcompare:", err)
			return 2
		}
		if merged == nil {
			header := *m
			header.Points = nil
			// The merged manifest spans backends; the per-point stamps
			// carry the distinction.
			header.Backend = ""
			merged = &header
		}
		for _, p := range m.Points {
			k := keyOf(m, p)
			if prev, dup := seen[k]; dup {
				fmt.Fprintf(stderr, "benchcompare: %s and %s both contain %s scc=%d ppc=%d clusters=%d\n",
					prev, path, k.backend, k.sccBytes, k.ppc, k.clusters)
				return 2
			}
			seen[k] = path
			p.Backend = k.backend
			merged.Points = append(merged.Points, p)
		}
	}
	// The header's aggregate described one input; recompute it over the
	// merged point set.
	agg := obs.Aggregate{}
	for _, p := range merged.Points {
		agg.Points++
		agg.Refs += p.Refs
		agg.BusFetches += p.BusFetches
		agg.Invalidations += p.Invalidations
		if agg.BestCycles == 0 || p.Cycles < agg.BestCycles {
			agg.BestCycles = p.Cycles
		}
		if p.Cycles > agg.WorstCycles {
			agg.WorstCycles = p.Cycles
		}
	}
	merged.Aggregate = agg
	raw, err := json.MarshalIndent(merged, "", " ")
	if err != nil {
		fmt.Fprintln(stderr, "benchcompare:", err)
		return 2
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "benchcompare:", err)
		return 2
	}
	fmt.Fprintf(stdout, "benchcompare: merged %d points from %d manifest(s) into %s\n",
		len(merged.Points), len(inputs), out)
	return 0
}

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli is the whole command behind main, parameterized for tests: it
// parses args, compares, and returns the process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10,
		"tolerated median throughput regression (0.10 = 10%); any single point may lose up to -severe-mult times this")
	severeMult := fs.Float64("severe-mult", 3,
		"single-point failure multiplier: one point regressing more than severe-mult*threshold fails the gate (raise it when individual points are short enough to jitter)")
	mergeOut := fs.String("merge", "",
		"merge the input manifests' points into one manifest written to this file, then exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchcompare [-threshold 0.10] baseline.json candidate.json\n")
		fmt.Fprintf(stderr, "       benchcompare -merge OUT.json in1.json in2.json...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mergeOut != "" {
		return mergeManifests(*mergeOut, fs.Args())
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := readManifest(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchcompare: baseline:", err)
		return 2
	}
	cand, err := readManifest(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchcompare: candidate:", err)
		return 2
	}

	baseIdx, candIdx := index(base), index(cand)
	keys := make([]pointKey, 0, len(baseIdx))
	for k := range baseIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.backend != b.backend {
			return a.backend < b.backend
		}
		if a.sccBytes != b.sccBytes {
			return a.sccBytes < b.sccBytes
		}
		if a.ppc != b.ppc {
			return a.ppc < b.ppc
		}
		return a.clusters < b.clusters
	})

	severeFloor := 1 - *severeMult*(*threshold)
	failures, warnings := 0, 0
	var ratios []float64
	for _, k := range keys {
		b := baseIdx[k]
		c, ok := candIdx[k]
		if !ok {
			fmt.Fprintf(stdout, "MISSING  %-8s scc=%-8d ppc=%-2d clusters=%d: point absent from candidate\n",
				k.backend, k.sccBytes, k.ppc, k.clusters)
			failures++
			continue
		}
		if c.Cycles != b.Cycles || c.Refs != b.Refs {
			fmt.Fprintf(stdout, "WARN     %-8s scc=%-8d ppc=%-2d clusters=%d: results changed "+
				"(cycles %d -> %d, refs %d -> %d) — model or workload change?\n",
				k.backend, k.sccBytes, k.ppc, k.clusters, b.Cycles, c.Cycles, b.Refs, c.Refs)
			warnings++
		}
		if b.SimCyclesPerMicro <= 0 || c.SimCyclesPerMicro <= 0 {
			continue
		}
		if b.WallNanos < minComparableWallNanos || c.WallNanos < minComparableWallNanos {
			continue
		}
		ratio := c.SimCyclesPerMicro / b.SimCyclesPerMicro
		ratios = append(ratios, ratio)
		tag := "ok      "
		switch {
		case ratio < severeFloor:
			tag = "SEVERE  "
			failures++
		case ratio < 1-*threshold:
			tag = "slower  "
		}
		if tag != "ok      " {
			fmt.Fprintf(stdout, "%s %-8s scc=%-8d ppc=%-2d clusters=%d: "+
				"%.2f -> %.2f sim_cycles/us (%+.0f%%), wall %.2fms -> %.2fms\n",
				tag, k.backend, k.sccBytes, k.ppc, k.clusters,
				b.SimCyclesPerMicro, c.SimCyclesPerMicro, (ratio-1)*100,
				float64(b.WallNanos)/1e6, float64(c.WallNanos)/1e6)
		}
	}
	for k := range candIdx {
		if _, ok := baseIdx[k]; !ok {
			fmt.Fprintf(stdout, "NOTE     %-8s scc=%-8d ppc=%-2d clusters=%d: new point not in baseline\n",
				k.backend, k.sccBytes, k.ppc, k.clusters)
		}
	}

	// No common point carried a throughput sample on both sides: this
	// "comparison" compared nothing. A zeroed or foreign baseline would
	// otherwise sail through (median of an empty set is 0, below no
	// floor), turning the gate into a no-op.
	if len(ratios) == 0 {
		fmt.Fprintf(stdout, "EMPTY    no comparable throughput samples between the manifests — "+
			"regenerate the baseline with `make bench-json`\n")
		failures++
	}

	med := median(ratios)
	if med > 0 && med < 1-*threshold {
		fmt.Fprintf(stdout, "REGRESS  median throughput ratio %.2fx is below %.2fx\n", med, 1-*threshold)
		failures++
	}
	fmt.Fprintf(stdout, "benchcompare: %d points, median throughput ratio %.2fx, "+
		"%d failure(s), %d result warning(s)\n", len(keys), med, failures, warnings)
	if failures > 0 {
		return 1
	}
	return 0
}
