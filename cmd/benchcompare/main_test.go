package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sccsim/internal/obs"
)

// run invokes cli with captured streams and returns (exit, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &out, &errb
	defer func() { stdout, stderr = oldOut, oldErr }()
	code := cli(args)
	return code, out.String(), errb.String()
}

func writeManifest(t *testing.T, name string, points []obs.PointRecord) string {
	t.Helper()
	m := obs.Manifest{Version: 1, Tool: "test", Points: points}
	raw, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func pt(ppc, scc int, throughput float64) obs.PointRecord {
	return obs.PointRecord{
		ProcsPerCluster: ppc, SCCBytes: scc, Clusters: 4,
		Cycles: 1000, Refs: 500, WallNanos: 1e7,
		SimCyclesPerMicro: throughput,
	}
}

func TestMissingBaselineIsHardError(t *testing.T) {
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, _, errOut := run(t, filepath.Join(t.TempDir(), "nope.json"), cand)
	if code != 2 {
		t.Fatalf("missing baseline exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "does not exist") || !strings.Contains(errOut, "make bench-json") {
		t.Fatalf("missing-baseline message unhelpful: %q", errOut)
	}
}

func TestUnparsableBaselineIsHardError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, _, errOut := run(t, bad, cand)
	if code != 2 {
		t.Fatalf("unparsable baseline exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "not a sweep manifest") {
		t.Fatalf("unparsable-baseline message unhelpful: %q", errOut)
	}
}

func TestEmptyManifestIsHardError(t *testing.T) {
	empty := writeManifest(t, "empty.json", nil)
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	if code, _, errOut := run(t, empty, cand); code != 2 || !strings.Contains(errOut, "no points") {
		t.Fatalf("pointless baseline exited %d (%q), want 2", code, errOut)
	}
}

// TestZeroThroughputBaselineFails is the regression test for the
// vacuous pass: a baseline whose points carry no throughput samples
// produced an empty ratio set, a zero median, and a green exit.
func TestZeroThroughputBaselineFails(t *testing.T) {
	base := writeManifest(t, "base.json", []obs.PointRecord{pt(1, 4096, 0)})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, out, _ := run(t, base, cand)
	if code != 1 {
		t.Fatalf("zero-throughput baseline exited %d, want 1", code)
	}
	if !strings.Contains(out, "no comparable throughput samples") {
		t.Fatalf("empty-comparison message missing: %q", out)
	}
}

func TestMatchingManifestsPass(t *testing.T) {
	points := []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 12)}
	base := writeManifest(t, "base.json", points)
	cand := writeManifest(t, "cand.json", points)
	code, out, _ := run(t, base, cand)
	if code != 0 {
		t.Fatalf("identical manifests exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "0 failure(s)") {
		t.Fatalf("summary missing: %q", out)
	}
}

func TestSeverePointRegressionFails(t *testing.T) {
	base := writeManifest(t, "base.json", []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 10)})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 1)})
	code, out, _ := run(t, base, cand)
	if code != 1 || !strings.Contains(out, "SEVERE") {
		t.Fatalf("70%%+ single-point drop exited %d:\n%s", code, out)
	}
}

func TestMissingGridPointFails(t *testing.T) {
	base := writeManifest(t, "base.json", []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 10)})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, out, _ := run(t, base, cand)
	if code != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("dropped grid point exited %d:\n%s", code, out)
	}
}

func TestUsageError(t *testing.T) {
	if code, _, errOut := run(t, "one.json"); code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("single argument exited %d (%q), want usage error", code, errOut)
	}
}

func writeBackendManifest(t *testing.T, dir, name, backend string, points []obs.PointRecord) string {
	t.Helper()
	m := obs.Manifest{Version: 1, Tool: "test", Backend: backend, Points: points}
	raw, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeCombinesBackends: -merge concatenates an exact and an
// analytic sweep of the same grid into one manifest, stamping every
// point with its source backend, and the merged file round-trips
// through a self-comparison cleanly.
func TestMergeCombinesBackends(t *testing.T) {
	dir := t.TempDir()
	exact := writeBackendManifest(t, dir, "exact.json", "exact",
		[]obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 12)})
	analytic := writeBackendManifest(t, dir, "analytic.json", "analytic",
		[]obs.PointRecord{pt(1, 4096, 900), pt(2, 8192, 1100)})
	out := filepath.Join(dir, "merged.json")
	code, outStr, errOut := run(t, "-merge", out, exact, analytic)
	if code != 0 {
		t.Fatalf("merge exited %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(outStr, "merged 4 points from 2 manifest(s)") {
		t.Errorf("merge summary: %q", outStr)
	}
	var m obs.Manifest
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	backends := map[string]int{}
	for _, p := range m.Points {
		backends[p.Backend]++
	}
	if backends["exact"] != 2 || backends["analytic"] != 2 {
		t.Errorf("merged backends = %v, want 2 exact + 2 analytic", backends)
	}
	if m.Aggregate.Points != 4 {
		t.Errorf("merged aggregate points = %d, want 4", m.Aggregate.Points)
	}
	// The merged baseline compares clean against itself — the two
	// backends' identical grid coordinates do not collide.
	if code, cmpOut, _ := run(t, out, out); code != 0 {
		t.Errorf("merged self-comparison exited %d:\n%s", code, cmpOut)
	}
}

// TestMergeRejectsDuplicates: merging the same backend's sweep twice is
// a hard error, not a silently doubled baseline.
func TestMergeRejectsDuplicates(t *testing.T) {
	dir := t.TempDir()
	a := writeBackendManifest(t, dir, "a.json", "exact", []obs.PointRecord{pt(1, 4096, 10)})
	b := writeBackendManifest(t, dir, "b.json", "exact", []obs.PointRecord{pt(1, 4096, 11)})
	code, _, errOut := run(t, "-merge", filepath.Join(dir, "out.json"), a, b)
	if code != 2 || !strings.Contains(errOut, "both contain") {
		t.Fatalf("duplicate merge exited %d, stderr:\n%s", code, errOut)
	}
}

// TestBackendKeysSeparatePoints: a candidate that dropped its analytic
// half is MISSING those points even though the exact grid coordinates
// all match, and an unstamped (pre-backend) manifest counts as exact.
func TestBackendKeysSeparatePoints(t *testing.T) {
	dir := t.TempDir()
	exactPts := []obs.PointRecord{pt(1, 4096, 10)}
	analyticPts := []obs.PointRecord{pt(1, 4096, 900)}
	for i := range analyticPts {
		analyticPts[i].Backend = "analytic"
	}
	base := writeBackendManifest(t, dir, "base.json", "", append(exactPts, analyticPts...))
	cand := writeBackendManifest(t, dir, "cand.json", "", exactPts)
	code, out, _ := run(t, base, cand)
	if code != 1 || !strings.Contains(out, "MISSING  analytic") {
		t.Fatalf("dropped analytic half exited %d:\n%s", code, out)
	}

	// Legacy manifest without any backend stamps still matches a new
	// exact-stamped one.
	legacy := writeBackendManifest(t, dir, "legacy.json", "", []obs.PointRecord{pt(1, 4096, 10)})
	stamped := writeBackendManifest(t, dir, "stamped.json", "exact", []obs.PointRecord{pt(1, 4096, 10)})
	if code, out, _ := run(t, legacy, stamped); code != 0 {
		t.Fatalf("legacy-vs-stamped exited %d:\n%s", code, out)
	}
}

// TestNoiseFloorExcludesMicroPoints: a point that ran for under 2ms on
// either side carries no timing signal — a wild throughput swing there
// must not trip the gate as long as stable points exist.
func TestNoiseFloorExcludesMicroPoints(t *testing.T) {
	micro := pt(1, 4096, 500)
	micro.WallNanos = 5e5 // 0.5ms: below the floor
	microSlow := micro
	microSlow.SimCyclesPerMicro = 50 // "10x regression" of pure jitter
	stable := pt(2, 8192, 10)
	base := writeManifest(t, "base.json", []obs.PointRecord{micro, stable})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{microSlow, stable})
	code, out, _ := run(t, base, cand)
	if code != 0 {
		t.Fatalf("sub-floor jitter tripped the gate (exit %d):\n%s", code, out)
	}
}
