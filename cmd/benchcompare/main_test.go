package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sccsim/internal/obs"
)

// run invokes cli with captured streams and returns (exit, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &out, &errb
	defer func() { stdout, stderr = oldOut, oldErr }()
	code := cli(args)
	return code, out.String(), errb.String()
}

func writeManifest(t *testing.T, name string, points []obs.PointRecord) string {
	t.Helper()
	m := obs.Manifest{Version: 1, Tool: "test", Points: points}
	raw, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func pt(ppc, scc int, throughput float64) obs.PointRecord {
	return obs.PointRecord{
		ProcsPerCluster: ppc, SCCBytes: scc, Clusters: 4,
		Cycles: 1000, Refs: 500, WallNanos: 1e6,
		SimCyclesPerMicro: throughput,
	}
}

func TestMissingBaselineIsHardError(t *testing.T) {
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, _, errOut := run(t, filepath.Join(t.TempDir(), "nope.json"), cand)
	if code != 2 {
		t.Fatalf("missing baseline exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "does not exist") || !strings.Contains(errOut, "make bench-json") {
		t.Fatalf("missing-baseline message unhelpful: %q", errOut)
	}
}

func TestUnparsableBaselineIsHardError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, _, errOut := run(t, bad, cand)
	if code != 2 {
		t.Fatalf("unparsable baseline exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "not a sweep manifest") {
		t.Fatalf("unparsable-baseline message unhelpful: %q", errOut)
	}
}

func TestEmptyManifestIsHardError(t *testing.T) {
	empty := writeManifest(t, "empty.json", nil)
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	if code, _, errOut := run(t, empty, cand); code != 2 || !strings.Contains(errOut, "no points") {
		t.Fatalf("pointless baseline exited %d (%q), want 2", code, errOut)
	}
}

// TestZeroThroughputBaselineFails is the regression test for the
// vacuous pass: a baseline whose points carry no throughput samples
// produced an empty ratio set, a zero median, and a green exit.
func TestZeroThroughputBaselineFails(t *testing.T) {
	base := writeManifest(t, "base.json", []obs.PointRecord{pt(1, 4096, 0)})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, out, _ := run(t, base, cand)
	if code != 1 {
		t.Fatalf("zero-throughput baseline exited %d, want 1", code)
	}
	if !strings.Contains(out, "no comparable throughput samples") {
		t.Fatalf("empty-comparison message missing: %q", out)
	}
}

func TestMatchingManifestsPass(t *testing.T) {
	points := []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 12)}
	base := writeManifest(t, "base.json", points)
	cand := writeManifest(t, "cand.json", points)
	code, out, _ := run(t, base, cand)
	if code != 0 {
		t.Fatalf("identical manifests exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "0 failure(s)") {
		t.Fatalf("summary missing: %q", out)
	}
}

func TestSeverePointRegressionFails(t *testing.T) {
	base := writeManifest(t, "base.json", []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 10)})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 1)})
	code, out, _ := run(t, base, cand)
	if code != 1 || !strings.Contains(out, "SEVERE") {
		t.Fatalf("70%%+ single-point drop exited %d:\n%s", code, out)
	}
}

func TestMissingGridPointFails(t *testing.T) {
	base := writeManifest(t, "base.json", []obs.PointRecord{pt(1, 4096, 10), pt(2, 8192, 10)})
	cand := writeManifest(t, "cand.json", []obs.PointRecord{pt(1, 4096, 10)})
	code, out, _ := run(t, base, cand)
	if code != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("dropped grid point exited %d:\n%s", code, out)
	}
}

func TestUsageError(t *testing.T) {
	if code, _, errOut := run(t, "one.json"); code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("single argument exited %d (%q), want usage error", code, errOut)
	}
}
