// Command sccexplore regenerates the tables and figures of "Exploring
// the Design Space for a Shared-Cache Multiprocessor" (Nayfeh &
// Olukotun, ISCA 1994).
//
// Usage:
//
//	sccexplore -exp all                 # everything (paper scale; slow)
//	sccexplore -exp table3 -scale quick # one experiment, reduced scale
//	sccexplore -exp fig2 -parallel 8    # sweep worker-pool size (same output)
//	sccexplore -list                    # list experiment ids
//
// Sweeps run on the concurrent design-space engine and render a live
// progress meter on stderr (suppress with -quiet). Output is identical
// for every -parallel value; Ctrl-C cancels cleanly.
//
// Experiments: fig2 table3 table4 fig3 fig4 fig5 fig6 table5 table6
// table7 area invariance all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sccsim"
)

var experiments = []struct {
	id, desc string
}{
	{"fig2", "Barnes-Hut normalized execution time vs SCC size"},
	{"table3", "Barnes-Hut speedups relative to one processor per cluster"},
	{"table4", "Barnes-Hut read miss rates (prefetching vs interference)"},
	{"fig3", "MP3D normalized execution time vs SCC size"},
	{"fig4", "Cholesky normalized execution time vs SCC size"},
	{"fig5", "Multiprogramming normalized execution time vs SCC size"},
	{"fig6", "Multiprogramming self-relative speedups"},
	{"table5", "Relative uniprocessor execution time vs load latency"},
	{"table6", "Single-chip comparison: 1P/64KB vs 2P/32KB"},
	{"table7", "MCM comparison: 4P/64KB (16P) vs 8P/128KB (32P)"},
	{"area", "Chip implementations and areas (Figures 8-11)"},
	{"invariance", "Invalidations vs processors per cluster (Sec 3.1.2 claim)"},
	{"frontier", "Cost/performance frontier over the whole design space (extension)"},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	scaleName := flag.String("scale", "paper", `problem scale: "paper" or "quick"`)
	seed := flag.Int64("seed", 1, "workload generator seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvWorkload := flag.String("csv", "", "dump a workload's full design-space sweep as CSV and exit (barnes-hut|mp3d|cholesky|multiprog)")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS); results are identical for any value")
	quiet := flag.Bool("quiet", false, "suppress the live progress meter on stderr")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-11s %s\n", e.id, e.desc)
		}
		return
	}

	var scale sccsim.Scale
	switch *scaleName {
	case "paper":
		scale = sccsim.PaperScale()
	case "quick":
		scale = sccsim.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "sccexplore: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	// Ctrl-C cancels the in-flight sweep points and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := func(label string) []sccsim.Opt {
		o := []sccsim.Opt{sccsim.WithScale(scale), sccsim.WithParallelism(*parallel)}
		if !*quiet {
			o = append(o, sccsim.WithProgress(progressMeter(label)))
		}
		return o
	}

	if *csvWorkload != "" {
		g, err := sccsim.SweepCtx(ctx, sccsim.Workload(*csvWorkload), opts(*csvWorkload)...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccexplore: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(sccsim.GridCSV(g))
		return
	}

	if err := run(ctx, *exp, scale, opts); err != nil {
		fmt.Fprintf(os.Stderr, "sccexplore: %v\n", err)
		os.Exit(1)
	}
}

// progressMeter renders the engine's progress hook as a live one-line
// meter on stderr: points done/total, elapsed wall clock, and the
// simulation time of the point that just finished.
func progressMeter(label string) func(sccsim.Progress) {
	return func(p sccsim.Progress) {
		fmt.Fprintf(os.Stderr, "\r%-12s %2d/%d points  elapsed %-8v  last %v (%v)        ",
			label, p.Done, p.Total,
			p.Elapsed.Round(10*time.Millisecond),
			p.PointTime.Round(time.Millisecond), p.Config)
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func run(ctx context.Context, exp string, scale sccsim.Scale, opts func(label string) []sccsim.Opt) error {
	start := time.Now()
	defer func() { fmt.Printf("\n[%s in %v]\n", exp, time.Since(start).Round(time.Millisecond)) }()

	// Cached sweeps so "all" reuses grids across experiments.
	grids := map[sccsim.Workload]*sccsim.Grid{}
	grid := func(w sccsim.Workload) (*sccsim.Grid, error) {
		if g, ok := grids[w]; ok {
			return g, nil
		}
		g, err := sccsim.SweepCtx(ctx, w, opts("sweep "+string(w))...)
		if err == nil {
			grids[w] = g
		}
		return g, err
	}

	costEntries := func() ([]*sccsim.CostPerfEntry, error) {
		var entries []*sccsim.CostPerfEntry
		for _, w := range sccsim.AllWorkloads {
			e, err := sccsim.BuildCostPerfEntryCtx(ctx, w, opts("cost "+string(w))...)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
		return entries, nil
	}

	show := func(id string) error {
		switch id {
		case "fig2", "fig3", "fig4", "fig5":
			w := map[string]sccsim.Workload{
				"fig2": sccsim.BarnesHut, "fig3": sccsim.MP3D,
				"fig4": sccsim.Cholesky, "fig5": sccsim.Multiprog,
			}[id]
			g, err := grid(w)
			if err != nil {
				return err
			}
			fmt.Println(sccsim.Figure(g, "Figure "+id[3:]+" — "+string(w)))
		case "table3":
			g, err := grid(sccsim.BarnesHut)
			if err != nil {
				return err
			}
			fmt.Println(sccsim.SpeedupTable(g))
		case "table4":
			g, err := grid(sccsim.BarnesHut)
			if err != nil {
				return err
			}
			fmt.Println(sccsim.MissRateTable(g))
		case "fig6":
			g, err := grid(sccsim.Multiprog)
			if err != nil {
				return err
			}
			fmt.Println(sccsim.SpeedupFigure(g))
		case "table5":
			fmt.Println(sccsim.RenderTable5())
		case "table6":
			entries, err := costEntries()
			if err != nil {
				return err
			}
			fmt.Println(sccsim.RenderTable6(sccsim.CompareSingleChip(entries)))
		case "table7":
			entries, err := costEntries()
			if err != nil {
				return err
			}
			fmt.Println(sccsim.RenderTable7(sccsim.CompareMCM(entries)))
		case "area":
			fmt.Println(sccsim.RenderAreaReport())
		case "frontier":
			for _, w := range sccsim.AllWorkloads {
				g, err := grid(w)
				if err != nil {
					return err
				}
				fmt.Println(sccsim.RenderFrontier(w, sccsim.Frontier(g)))
			}
		case "invariance":
			for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky} {
				g, err := grid(w)
				if err != nil {
					return err
				}
				fmt.Println(sccsim.InvalidationTable(g))
			}
		default:
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		return nil
	}

	if exp != "all" {
		return show(exp)
	}
	for _, e := range experiments {
		fmt.Printf("=== %s — %s ===\n", e.id, e.desc)
		if err := show(e.id); err != nil {
			return err
		}
	}
	// table6/table7 share entries but show() rebuilds them; acceptable
	// for the all-experiments run.
	return nil
}
