// Command sccexplore regenerates the tables and figures of "Exploring
// the Design Space for a Shared-Cache Multiprocessor" (Nayfeh &
// Olukotun, ISCA 1994).
//
// Usage:
//
//	sccexplore -exp all                 # everything (paper scale; slow)
//	sccexplore -exp table3 -scale quick # one experiment, reduced scale
//	sccexplore -exp fig2 -parallel 8    # sweep worker-pool size (same output)
//	sccexplore -list                    # list experiment ids
//
// Sweeps run on the concurrent design-space engine and render a live
// progress meter on stderr (suppress with -quiet). Results go to stdout;
// every diagnostic (progress, timing footer, errors) goes to stderr, so
// stdout can be piped or redirected cleanly — in particular, -csv output
// is exactly the CSV document. Output is identical for every -parallel
// value; Ctrl-C cancels cleanly.
//
// Observability:
//
//	sccexplore -csv barnes-hut -manifest run.json  # versioned JSON run manifest
//	sccexplore -csv barnes-hut -trace run.trace    # Chrome trace (Perfetto)
//	sccexplore -exp all -debug-addr :6060          # live pprof + expvar metrics
//	sccexplore -csv mp3d -obs on                   # force metrics + structured logs
//	sccexplore -csv mp3d -obs off                  # no instrumentation (overhead baseline)
//
// -obs auto (the default) creates the metrics registry only when
// -debug-addr or -manifest asks for one; "on" always attaches a
// registry and a JSON slog logger; "off" disables every instrumentation
// site — `make obs-overhead` diffs "off" against "on" with benchcompare
// to enforce the nil-disabled zero-overhead contract.
//
// Backends:
//
//	sccexplore -csv mp3d -backend analytic   # reuse-distance model, not the simulator
//	sccexplore -crossval mp3d -scale quick   # analytic vs exact on the full grid
//
// -backend analytic answers the whole sweep from one reuse-distance
// profile pass (orders of magnitude faster; miss ratios are model
// estimates). -crossval runs both backends over a workload's full grid,
// prints the per-point comparison, and exits 1 if the analytic error
// exceeds the library's published bounds (sccsim.DefaultCrossBounds).
//
// Search:
//
//	sccexplore -search mp3d -scale quick           # adaptive frontier search
//	sccexplore -search mp3d -space 4K:512K:4K      # 10^4+-point size range
//	sccexplore -search mp3d -strategy random -budget 64
//	sccexplore -pareto mp3d -scale quick           # frontier from a plain sweep
//
// -search runs the adaptive pipeline (static constraint pruning,
// analytic triage, exact confirmation by successive halving) and prints
// the exact-confirmed Pareto frontier with a live stage meter on
// stderr; the per-stage accounting footer is a diagnostic. -pareto
// extracts the same frontier from an exhaustive sweep — the reference
// -search is measured against. -budget, -margin, -strategy and -space
// tune the search; -manifest works with -search too.
//
// Architecture axes:
//
//	sccexplore -csv mp3d -assoc 4                      # 4-way set-associative SCCs
//	sccexplore -csv mp3d -assoc 4 -repl random         # ... with random replacement
//	sccexplore -csv barnes-hut -line-bytes 32          # 32-byte cache lines
//	sccexplore -csv cholesky -hierarchy private        # per-processor private caches
//	sccexplore -csv cholesky -hierarchy hybrid -l1-bytes 8192  # private L1s over a shared SCC
//
// The axis flags overlay every configuration an experiment builds;
// leaving them at their defaults reproduces the paper's grids bit for
// bit. The analytic backend models -assoc only and rejects the other
// non-default axes with an error naming the exact backend. See
// docs/DESIGN-SPACE.md for the full axis reference.
//
// Trace caching: -trace-cache DIR persists every generated workload
// trace under DIR; later runs (any experiment, any process) load the
// traces instead of regenerating them.
//
// Experiments: fig2 table3 table4 fig3 fig4 fig5 fig6 table5 table6
// table7 area invariance all.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"sccsim"
	"sccsim/internal/obs"
)

// stdout receives experiment results only; stderr receives every
// diagnostic. Tests swap them to assert the separation.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

var experiments = []struct {
	id, desc string
}{
	{"fig2", "Barnes-Hut normalized execution time vs SCC size"},
	{"table3", "Barnes-Hut speedups relative to one processor per cluster"},
	{"table4", "Barnes-Hut read miss rates (prefetching vs interference)"},
	{"fig3", "MP3D normalized execution time vs SCC size"},
	{"fig4", "Cholesky normalized execution time vs SCC size"},
	{"fig5", "Multiprogramming normalized execution time vs SCC size"},
	{"fig6", "Multiprogramming self-relative speedups"},
	{"table5", "Relative uniprocessor execution time vs load latency"},
	{"table6", "Single-chip comparison: 1P/64KB vs 2P/32KB"},
	{"table7", "MCM comparison: 4P/64KB (16P) vs 8P/128KB (32P)"},
	{"area", "Chip implementations and areas (Figures 8-11)"},
	{"invariance", "Invalidations vs processors per cluster (Sec 3.1.2 claim)"},
	{"frontier", "Cost/performance frontier over the whole design space (extension)"},
}

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli is the whole command behind main, parameterized for tests: it
// parses args, runs, and returns the process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("sccexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (see -list)")
	scaleName := fs.String("scale", "paper", `problem scale: "paper" or "quick"`)
	seed := fs.Int64("seed", 1, "workload generator seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	csvWorkload := fs.String("csv", "", "dump a workload's full design-space sweep as CSV and exit (barnes-hut|mp3d|cholesky|multiprog)")
	searchWorkload := fs.String("search", "", "run the adaptive design-space search on this workload and print the exact-confirmed Pareto frontier (barnes-hut|mp3d|cholesky|multiprog)")
	paretoWorkload := fs.String("pareto", "", "sweep this workload exhaustively and print its cycles-vs-area Pareto frontier")
	strategy := fs.String("strategy", "auto", `-search strategy: "auto", "exhaustive", "adaptive" or "random"`)
	budget := fs.Int("budget", 0, "-search exact-simulation budget (0 = confirm every plausible candidate)")
	margin := fs.Float64("margin", 0, "-search analytic triage margin as a relative error (0 = the workload's calibrated default)")
	space := fs.String("space", "", `-search SCC size range as MIN:MAX:STEP with K/M suffixes (e.g. "4K:512K:4K"; empty = the paper's sizes)`)
	backendName := fs.String("backend", "exact", `execution backend: "exact" (cycle simulator) or "analytic" (reuse-distance model)`)
	crossWorkload := fs.String("crossval", "", "cross-validate the analytic backend against the exact simulator on this workload's full grid and exit (exit 1 on accuracy-bound violation)")
	lineBytes := fs.Int("line-bytes", 0, "cache line size in bytes, a power of two in 4..1024 (0 = the paper's 16)")
	assoc := fs.Int("assoc", 0, "SCC associativity (0 = the paper's direct-mapped caches)")
	repl := fs.String("repl", "", `replacement policy for set-associative caches: "lru" or "random" ("" = lru)`)
	hierarchy := fs.String("hierarchy", "", `cache organization: "shared" (the paper's SCCs), "private" (per-processor caches with bus coherence) or "hybrid" (private L1s backed by shared SCCs); "" = shared`)
	l1Bytes := fs.Int("l1-bytes", 0, "hybrid hierarchy's per-processor L1 size in bytes (0 = the default; requires -hierarchy hybrid)")
	parallel := fs.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS); results are identical for any value")
	quiet := fs.Bool("quiet", false, "suppress the live progress meter on stderr")
	verifyRuns := fs.Bool("verify", false, "run every simulation with the coherence invariant checker attached (slower; a violation fails the experiment)")
	manifestPath := fs.String("manifest", "", "write a versioned JSON run manifest of the -csv sweep to this file")
	traceCacheDir := fs.String("trace-cache", "", "persist generated workload traces in this directory; repeated runs load them instead of regenerating")
	tracePath := fs.String("trace", "", "write a Chrome trace_event timeline of the -csv sweep to this file (open in Perfetto)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	obsMode := fs.String("obs", "auto", `observability: "auto" (registry when -debug-addr/-manifest need it), "on" (registry + structured logs always) or "off" (every instrumentation site disabled, for overhead baselines)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments {
			fmt.Fprintf(stdout, "%-11s %s\n", e.id, e.desc)
		}
		return 0
	}

	var scale sccsim.Scale
	switch *scaleName {
	case "paper":
		scale = sccsim.PaperScale()
	case "quick":
		scale = sccsim.QuickScale()
	default:
		fmt.Fprintf(stderr, "sccexplore: unknown scale %q\n", *scaleName)
		return 2
	}
	scale.Seed = *seed

	backend, err := sccsim.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintf(stderr, "sccexplore: %v\n", err)
		return 2
	}

	axes := sccsim.Axes{
		LineBytes: *lineBytes, Assoc: *assoc, Repl: *repl,
		Hierarchy: *hierarchy, L1Bytes: *l1Bytes,
	}
	if !axes.IsZero() {
		// Bad axis values are usage errors; catch them before any trace
		// generation rather than mid-sweep.
		if err := axes.Validate(); err != nil {
			fmt.Fprintf(stderr, "sccexplore: %v\n", err)
			return 2
		}
	}

	if *manifestPath != "" && *csvWorkload == "" && *searchWorkload == "" {
		fmt.Fprintln(stderr, "sccexplore: -manifest requires -csv or -search (it describes one run)")
		return 2
	}
	if *tracePath != "" && *csvWorkload == "" {
		fmt.Fprintln(stderr, "sccexplore: -trace requires -csv (it describes one sweep)")
		return 2
	}

	// The metrics registry feeds two consumers: the expvar endpoint
	// (live, while running) and the manifest's metrics snapshot (final).
	var metrics *sccsim.Metrics
	switch *obsMode {
	case "on":
		metrics = sccsim.NewMetrics()
	case "auto":
		if *debugAddr != "" || *manifestPath != "" {
			metrics = sccsim.NewMetrics()
		}
	case "off":
		if *debugAddr != "" {
			fmt.Fprintln(stderr, "sccexplore: -obs off contradicts -debug-addr")
			return 2
		}
	default:
		fmt.Fprintf(stderr, "sccexplore: unknown -obs mode %q (want auto, on or off)\n", *obsMode)
		return 2
	}
	if *debugAddr != "" {
		// Guard against re-registration across repeated cli runs in
		// tests — expvar.Publish panics on duplicate names.
		if expvar.Get("sccsim") == nil {
			expvar.Publish("sccsim", expvar.Func(func() any { return metrics.Snapshot() }))
		}
		go func() {
			// DefaultServeMux carries both the pprof handlers (via the
			// package import) and expvar's /debug/vars.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(stderr, "sccexplore: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "sccexplore: pprof and expvar on http://%s/debug/\n", *debugAddr)
	}

	// Ctrl-C cancels the in-flight sweep points and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// -obs on also attaches the structured logger, so the overhead gate
	// measures the full enabled configuration, not just metrics.
	var logger *slog.Logger
	if *obsMode == "on" {
		logger = obs.NewJSONLogger(stderr, slog.LevelInfo)
	}

	opts := func(label string) []sccsim.Opt {
		o := []sccsim.Opt{sccsim.WithScale(scale), sccsim.WithParallelism(*parallel), sccsim.WithBackend(backend)}
		if !axes.IsZero() {
			o = append(o, sccsim.WithAxes(axes))
		}
		if metrics != nil {
			o = append(o, sccsim.WithMetrics(metrics))
		}
		if logger != nil {
			o = append(o, sccsim.WithLogger(logger))
		}
		if *traceCacheDir != "" {
			o = append(o, sccsim.WithTraceCache(*traceCacheDir))
		}
		if *verifyRuns {
			o = append(o, sccsim.WithVerify())
		}
		// Search mode has its own stage meter (WithSearchProgress); the
		// per-point sweep meter would interleave with it on one line.
		if !*quiet && !strings.HasPrefix(label, "search ") {
			o = append(o, sccsim.WithProgress(progressMeter(label)))
		}
		return o
	}

	if *crossWorkload != "" {
		if err := runCrossval(ctx, *crossWorkload, opts); err != nil {
			fmt.Fprintf(stderr, "sccexplore: %v\n", err)
			return 1
		}
		return 0
	}

	if *searchWorkload != "" {
		spec := sccsim.SearchSpec{
			Strategy: sccsim.SearchStrategy(*strategy),
			Budget:   *budget,
			Margin:   *margin,
			Seed:     *seed,
		}
		if *space != "" {
			min, max, step, err := parseSpace(*space)
			if err != nil {
				fmt.Fprintf(stderr, "sccexplore: %v\n", err)
				return 2
			}
			spec.Space.SCCBytesMin, spec.Space.SCCBytesMax, spec.Space.SCCBytesStep = min, max, step
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(stderr, "sccexplore: %v\n", err)
			return 2
		}
		if err := runSearch(ctx, *searchWorkload, *manifestPath, spec, *quiet, opts); err != nil {
			fmt.Fprintf(stderr, "sccexplore: %v\n", err)
			return 1
		}
		return 0
	}

	if *paretoWorkload != "" {
		if err := runPareto(ctx, *paretoWorkload, opts); err != nil {
			fmt.Fprintf(stderr, "sccexplore: %v\n", err)
			return 1
		}
		return 0
	}

	if *csvWorkload != "" {
		if err := runCSV(ctx, *csvWorkload, *manifestPath, *tracePath, opts); err != nil {
			fmt.Fprintf(stderr, "sccexplore: %v\n", err)
			return 1
		}
		return 0
	}

	if err := run(ctx, *exp, opts); err != nil {
		fmt.Fprintf(stderr, "sccexplore: %v\n", err)
		return 1
	}
	return 0
}

// runCrossval runs the analytic-vs-exact comparison over one
// workload's full grid, prints the per-point report, and fails if the
// analytic backend's published accuracy bounds are exceeded.
func runCrossval(ctx context.Context, workload string, opts func(string) []sccsim.Opt) error {
	w, err := sccsim.ParseWorkload(workload)
	if err != nil {
		return err
	}
	r, err := sccsim.CrossValidate(ctx, w, opts("crossval "+workload)...)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, r.String())
	if err := r.Check(sccsim.DefaultCrossBounds(w)); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "sccexplore: %s within analytic accuracy bounds\n", w)
	return nil
}

// runCSV sweeps one workload and prints its grid as CSV, optionally
// writing the run manifest and Chrome trace artifacts.
func runCSV(ctx context.Context, workload, manifestPath, tracePath string, opts func(string) []sccsim.Opt) error {
	o := opts(workload)
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	if manifestPath != "" {
		f, err := open(manifestPath)
		if err != nil {
			return err
		}
		o = append(o, sccsim.WithManifest(f))
	}
	if tracePath != "" {
		f, err := open(tracePath)
		if err != nil {
			return err
		}
		o = append(o, sccsim.WithTraceExport(f))
	}
	g, err := sccsim.SweepCtx(ctx, sccsim.Workload(workload), o...)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, sccsim.GridCSV(g))
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sccexplore: wrote %s\n", f.Name())
	}
	files = nil
	return nil
}

// progressMeter renders the engine's progress hook as a live one-line
// meter on stderr: points done/total, elapsed wall clock, and the
// simulation time of the point that just finished.
func progressMeter(label string) func(sccsim.Progress) {
	return func(p sccsim.Progress) {
		fmt.Fprintf(stderr, "\r%-12s %2d/%d points  elapsed %-8v  last %v (%v)        ",
			label, p.Done, p.Total,
			p.Elapsed.Round(10*time.Millisecond),
			p.PointTime.Round(time.Millisecond), p.Config)
		if p.Done == p.Total {
			fmt.Fprintln(stderr)
		}
	}
}

func run(ctx context.Context, exp string, opts func(label string) []sccsim.Opt) error {
	start := time.Now()
	// Timing footer is a diagnostic: stderr, so stdout stays pipeable.
	defer func() { fmt.Fprintf(stderr, "[%s in %v]\n", exp, time.Since(start).Round(time.Millisecond)) }()

	// Cached sweeps so "all" reuses grids across experiments.
	grids := map[sccsim.Workload]*sccsim.Grid{}
	grid := func(w sccsim.Workload) (*sccsim.Grid, error) {
		if g, ok := grids[w]; ok {
			return g, nil
		}
		g, err := sccsim.SweepCtx(ctx, w, opts("sweep "+string(w))...)
		if err == nil {
			grids[w] = g
		}
		return g, err
	}

	costEntries := func() ([]*sccsim.CostPerfEntry, error) {
		var entries []*sccsim.CostPerfEntry
		for _, w := range sccsim.AllWorkloads {
			e, err := sccsim.BuildCostPerfEntryCtx(ctx, w, opts("cost "+string(w))...)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
		return entries, nil
	}

	show := func(id string) error {
		switch id {
		case "fig2", "fig3", "fig4", "fig5":
			w := map[string]sccsim.Workload{
				"fig2": sccsim.BarnesHut, "fig3": sccsim.MP3D,
				"fig4": sccsim.Cholesky, "fig5": sccsim.Multiprog,
			}[id]
			g, err := grid(w)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sccsim.Figure(g, "Figure "+id[3:]+" — "+string(w)))
		case "table3":
			g, err := grid(sccsim.BarnesHut)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sccsim.SpeedupTable(g))
		case "table4":
			g, err := grid(sccsim.BarnesHut)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sccsim.MissRateTable(g))
		case "fig6":
			g, err := grid(sccsim.Multiprog)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sccsim.SpeedupFigure(g))
		case "table5":
			fmt.Fprintln(stdout, sccsim.RenderTable5())
		case "table6":
			entries, err := costEntries()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sccsim.RenderTable6(sccsim.CompareSingleChip(entries)))
		case "table7":
			entries, err := costEntries()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sccsim.RenderTable7(sccsim.CompareMCM(entries)))
		case "area":
			fmt.Fprintln(stdout, sccsim.RenderAreaReport())
		case "frontier":
			for _, w := range sccsim.AllWorkloads {
				g, err := grid(w)
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, sccsim.RenderFrontier(w, sccsim.Frontier(g)))
			}
		case "invariance":
			for _, w := range []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky} {
				g, err := grid(w)
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, sccsim.InvalidationTable(g))
			}
		default:
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		return nil
	}

	if exp != "all" {
		return show(exp)
	}
	for _, e := range experiments {
		fmt.Fprintf(stdout, "=== %s — %s ===\n", e.id, e.desc)
		if err := show(e.id); err != nil {
			return err
		}
	}
	// table6/table7 share entries but show() rebuilds them; acceptable
	// for the all-experiments run.
	return nil
}
