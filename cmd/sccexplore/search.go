// The adaptive-search and Pareto-frontier modes: -search runs the
// sccsim.SearchCtx pipeline (static pruning, analytic triage, exact
// confirmation) with a live stage meter, -pareto extracts the
// cycles-vs-area frontier from a plain exhaustive sweep. Both print the
// same frontier shape, sharing sccsim.ParetoFront, so their outputs are
// directly comparable.

package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sccsim"
)

// parseSpace parses the -space flag: "MIN:MAX:STEP" SCC byte sizes,
// each accepting K/M suffixes (e.g. "4K:512K:4K").
func parseSpace(s string) (min, max, step int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("-space wants MIN:MAX:STEP, got %q", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		mult := 1
		switch {
		case strings.HasSuffix(p, "K"), strings.HasSuffix(p, "k"):
			mult, p = 1024, p[:len(p)-1]
		case strings.HasSuffix(p, "M"), strings.HasSuffix(p, "m"):
			mult, p = 1024*1024, p[:len(p)-1]
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("-space element %q: %v", parts[i], err)
		}
		vals[i] = n * mult
	}
	return vals[0], vals[1], vals[2], nil
}

// searchMeter renders the search pipeline's live progress on stderr:
// the stage, its counters, and the running exact-simulation total.
func searchMeter(label string) func(sccsim.SearchProgress) {
	return func(p sccsim.SearchProgress) {
		round := ""
		if p.Round > 0 {
			round = fmt.Sprintf(" round %d", p.Round)
		}
		fmt.Fprintf(stderr, "\r%-18s %-8s%s  %d/%d  exact sims %d        ",
			label, p.Phase, round, p.Done, p.Total, p.ExactSims)
	}
}

// frontierTable renders search frontier points as the mode's stdout
// payload.
func frontierTable(points []sccsim.SearchPoint, best *sccsim.SearchPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-7s %12s %12s %12s %10s\n",
		"procs/cl", "scc", "cycles", "adj cycles", "system mm2", "cost/perf")
	for _, p := range points {
		mark := ""
		if best != nil && p.PPC == best.PPC && p.SCCBytes == best.SCCBytes {
			mark = "  best"
		}
		fmt.Fprintf(&b, "%-9d %-7s %12d %12.0f %12.1f %10.2f%s\n",
			p.PPC, sizeLabel(p.SCCBytes), p.Cycles, p.AdjCycles, p.SystemMM2, p.CostPerf, mark)
	}
	return b.String()
}

func sizeLabel(bytes int) string {
	if bytes >= 1024 && bytes%1024 == 0 {
		return fmt.Sprintf("%dK", bytes/1024)
	}
	return fmt.Sprint(bytes)
}

// runSearch runs the adaptive search on one workload and prints the
// exact-confirmed frontier; the per-stage accounting goes to stderr as
// a diagnostic footer.
func runSearch(ctx context.Context, workload, manifestPath string, spec sccsim.SearchSpec, quiet bool, opts func(string) []sccsim.Opt) error {
	w, err := sccsim.ParseWorkload(workload)
	if err != nil {
		return err
	}
	o := opts("search " + workload)
	if !quiet {
		o = append(o, sccsim.WithSearchProgress(searchMeter("search "+workload)))
	}
	var mf *os.File
	if manifestPath != "" {
		mf, err = os.Create(manifestPath)
		if err != nil {
			return err
		}
		defer mf.Close()
		o = append(o, sccsim.WithManifest(mf))
	}
	res, err := sccsim.SearchCtx(ctx, w, spec, o...)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintln(stderr)
	}
	fmt.Fprintf(stdout, "%s search frontier (%s strategy)\n", w, res.Stats.Strategy)
	fmt.Fprint(stdout, frontierTable(res.Frontier, res.Best))
	st := res.Stats
	fmt.Fprintf(stderr, "sccexplore: space %d  static-pruned %d  triage-pruned %d  analytic evals %d  exact sims %d  abandoned %d  rounds %d\n",
		st.SpaceSize, st.StaticPruned, st.TriagePruned, st.AnalyticEvals, st.ExactSims, st.Abandoned, st.Rounds)
	if mf != nil {
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sccexplore: wrote %s\n", mf.Name())
	}
	return nil
}

// runPareto sweeps one workload exhaustively and prints the
// cycles-vs-area Pareto frontier — the same extraction
// (sccsim.ParetoFront) the search pipeline confirms adaptively.
func runPareto(ctx context.Context, workload string, opts func(string) []sccsim.Opt) error {
	w, err := sccsim.ParseWorkload(workload)
	if err != nil {
		return err
	}
	g, err := sccsim.SweepCtx(ctx, w, opts("pareto "+workload)...)
	if err != nil {
		return err
	}
	points := sccsim.Frontier(g)
	front := sccsim.ParetoFront(points)
	fmt.Fprintf(stdout, "%s Pareto frontier (cycles vs area, %d of %d priced points)\n",
		w, len(front), len(points))
	search := make([]sccsim.SearchPoint, len(front))
	for i, p := range front {
		pt := g.At(p.SCCBytes, p.ProcsPerCluster)
		search[i] = sccsim.SearchPoint{
			Candidate:  sccsim.SearchCandidate{PPC: p.ProcsPerCluster, SCCBytes: p.SCCBytes},
			Clusters:   pt.Config.Clusters,
			Cycles:     pt.Result.Cycles,
			AdjCycles:  p.AdjCycles,
			ClusterMM2: p.ClusterMM2,
			SystemMM2:  p.SystemMM2,
			Perf:       p.Perf,
			CostPerf:   p.CostPerf,
		}
	}
	var best *sccsim.SearchPoint
	if b := sccsim.BestDesign(points); b != nil {
		for i := range search {
			if search[i].PPC == b.ProcsPerCluster && search[i].SCCBytes == b.SCCBytes {
				best = &search[i]
			}
		}
	}
	fmt.Fprint(stdout, frontierTable(search, best))
	return nil
}
