package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSearchMatchesPareto is the CLI view of the headline contract: the
// adaptive -search frontier table is identical to the -pareto table
// extracted from an exhaustive sweep, with diagnostics confined to
// stderr in both modes.
func TestSearchMatchesPareto(t *testing.T) {
	code, searchOut, errOut := runCLI(t, "-search", "multiprog", "-scale", "quick", "-quiet", "-parallel", "4")
	if code != 0 {
		t.Fatalf("-search exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "exact sims") {
		t.Errorf("stage accounting footer missing from stderr:\n%s", errOut)
	}
	if strings.Contains(searchOut, "exact sims") {
		t.Errorf("diagnostics leaked into stdout:\n%s", searchOut)
	}
	code, paretoOut, errOut := runCLI(t, "-pareto", "multiprog", "-scale", "quick", "-quiet", "-parallel", "4")
	if code != 0 {
		t.Fatalf("-pareto exit %d, stderr:\n%s", code, errOut)
	}
	// Drop each mode's one-line heading; the frontier tables underneath
	// must agree point for point.
	searchTable := searchOut[strings.Index(searchOut, "\n")+1:]
	paretoTable := paretoOut[strings.Index(paretoOut, "\n")+1:]
	if searchTable != paretoTable {
		t.Errorf("-search and -pareto frontiers differ:\n-search:\n%s\n-pareto:\n%s", searchTable, paretoTable)
	}
	if !strings.Contains(searchTable, "best") {
		t.Errorf("best-design marker missing:\n%s", searchTable)
	}
}

// TestSearchManifest: -manifest composes with -search, producing a
// backend "search" manifest with the strategy stamp.
func TestSearchManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "search.json")
	code, _, errOut := runCLI(t, "-search", "multiprog", "-scale", "quick", "-quiet",
		"-strategy", "adaptive", "-manifest", manifest)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	var doc struct {
		Version  int    `json:"version"`
		Backend  string `json:"backend"`
		Workload string `json:"workload"`
		Search   *struct {
			Strategy  string `json:"strategy"`
			ExactSims int    `json:"exact_sims"`
		} `json:"search"`
	}
	if err := decodeJSONFile(manifest, &doc); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if doc.Version != 1 || doc.Backend != "search" || doc.Workload != "multiprog" {
		t.Errorf("manifest header = %+v", doc)
	}
	if doc.Search == nil || doc.Search.Strategy != "adaptive" || doc.Search.ExactSims == 0 {
		t.Errorf("search stamp = %+v", doc.Search)
	}
}

// TestParseSpace covers the -space grammar.
func TestParseSpace(t *testing.T) {
	min, max, step, err := parseSpace("4K:1M:64K")
	if err != nil || min != 4096 || max != 1<<20 || step != 64*1024 {
		t.Errorf("parseSpace(4K:1M:64K) = %d,%d,%d,%v", min, max, step, err)
	}
	if _, _, _, err := parseSpace("4096:8192"); err == nil {
		t.Error("two-element -space accepted")
	}
	if _, _, _, err := parseSpace("a:b:c"); err == nil {
		t.Error("non-numeric -space accepted")
	}
}

// TestSearchUsageErrors: bad search flags are usage errors (exit 2)
// that never start a simulation.
func TestSearchUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-search", "multiprog", "-strategy", "genetic"},
		{"-search", "multiprog", "-space", "nope"},
		{"-search", "multiprog", "-space", "100:200:50"}, // not line-aligned
		{"-search", "multiprog", "-margin", "2"},
	}
	for _, args := range cases {
		code, _, errOut := runCLI(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2; stderr:\n%s", args, code, errOut)
		}
	}
	// An unknown workload surfaces from the run itself.
	code, _, errOut := runCLI(t, "-search", "fft", "-scale", "quick", "-quiet")
	if code != 1 || !strings.Contains(errOut, "unknown workload") {
		t.Errorf("unknown workload: exit %d, stderr:\n%s", code, errOut)
	}
}
