package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI runs the command in-process with stdout/stderr captured.
func runCLI(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var o, e bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &o, &e
	defer func() { stdout, stderr = oldOut, oldErr }()
	code = cli(args)
	return code, o.String(), e.String()
}

// TestCSVStdoutIsClean pins the contract that -csv output is exactly the
// CSV document: header plus data rows, with every diagnostic (progress
// meter, timing footer) on stderr.
func TestCSVStdoutIsClean(t *testing.T) {
	code, out, errOut := runCLI(t, "-csv", "multiprog", "-scale", "quick", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "workload,") {
		t.Fatalf("stdout does not start with the CSV header:\n%s", out)
	}
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, "multiprog,") {
			t.Errorf("stdout line %d is not a CSV row: %q", i+2, line)
		}
	}
	if strings.Contains(out, "[") || strings.Contains(out, "points") {
		t.Errorf("diagnostics leaked into stdout:\n%s", out)
	}
	// The progress meter still runs — on stderr.
	if !strings.Contains(errOut, "points") {
		t.Errorf("progress meter missing from stderr:\n%s", errOut)
	}
}

// TestExperimentFooterOnStderr: the timing footer must land on stderr,
// leaving stdout to carry the experiment output alone.
func TestExperimentFooterOnStderr(t *testing.T) {
	code, out, errOut := runCLI(t, "-exp", "area", "-quiet")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if strings.Contains(out, "[area in ") {
		t.Errorf("timing footer leaked into stdout:\n%s", out)
	}
	if !strings.Contains(errOut, "[area in ") {
		t.Errorf("timing footer missing from stderr:\n%s", errOut)
	}
	if !strings.Contains(out, "Cluster implementations") && len(out) == 0 {
		t.Error("experiment output missing from stdout")
	}
}

// TestManifestAndTraceFlags: the -csv sweep writes both artifacts and
// they parse as JSON.
func TestManifestAndTraceFlags(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.json")
	trace := filepath.Join(dir, "run.trace")
	code, out, errOut := runCLI(t,
		"-csv", "multiprog", "-scale", "quick", "-quiet", "-parallel", "4",
		"-manifest", manifest, "-trace", trace)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.HasPrefix(out, "workload,") {
		t.Errorf("stdout is not CSV:\n%s", out)
	}
	var doc struct {
		Version  int    `json:"version"`
		Workload string `json:"workload"`
		Sweep    struct {
			TraceCacheMisses uint64 `json:"trace_cache_misses"`
		} `json:"sweep"`
	}
	if err := decodeJSONFile(manifest, &doc); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if doc.Version != 1 || doc.Workload != "multiprog" {
		t.Errorf("manifest = version %d workload %q", doc.Version, doc.Workload)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := decodeJSONFile(trace, &tr); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("chrome trace is empty")
	}
}

// TestManifestRequiresCSV: -manifest/-trace describe one sweep; outside
// -csv mode they are a usage error.
func TestManifestRequiresCSV(t *testing.T) {
	code, _, errOut := runCLI(t, "-exp", "area", "-manifest", "x.json")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (usage error); stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "-csv") {
		t.Errorf("usage error does not mention -csv:\n%s", errOut)
	}
}

// TestDebugEndpointsServe: with -debug-addr semantics, DefaultServeMux
// must carry both pprof and expvar handlers (the import side effects the
// flag relies on).
func TestDebugEndpointsServe(t *testing.T) {
	srv := httptest.NewServer(http.DefaultServeMux)
	defer srv.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestListGoesToStdout keeps -list scriptable.
func TestListGoesToStdout(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "table3") || !strings.Contains(out, "frontier") {
		t.Errorf("-list output incomplete:\n%s", out)
	}
}

// TestVerifyFlag runs a sweep with the coherence invariant checker
// attached: it must succeed and print the same CSV document as the
// unverified run — verification observes, never perturbs.
func TestVerifyFlag(t *testing.T) {
	code, plain, errOut := runCLI(t, "-csv", "multiprog", "-scale", "quick", "-quiet", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	code, checked, errOut := runCLI(t, "-csv", "multiprog", "-scale", "quick", "-quiet", "-parallel", "4", "-verify")
	if code != 0 {
		t.Fatalf("-verify exit %d, stderr:\n%s", code, errOut)
	}
	if checked != plain {
		t.Error("-verify changed the sweep CSV")
	}
}

func decodeJSONFile(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// TestBackendFlag: -backend analytic produces the same CSV shape as the
// simulator (header plus one row per design point), and an unknown
// backend is a usage error naming the valid values.
func TestBackendFlag(t *testing.T) {
	code, out, errOut := runCLI(t, "-csv", "multiprog", "-scale", "quick", "-quiet", "-backend", "analytic")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "workload,") || len(lines) < 2 {
		t.Fatalf("analytic CSV malformed:\n%s", out)
	}

	code, _, errOut = runCLI(t, "-csv", "multiprog", "-backend", "warp")
	if code != 2 {
		t.Fatalf("unknown backend: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown backend") || !strings.Contains(errOut, "exact analytic") {
		t.Errorf("unknown-backend error not actionable:\n%s", errOut)
	}
}

// TestCrossvalFlag: -crossval prints the per-point comparison table on
// stdout and exits 0 when the workload is within the published bounds.
func TestCrossvalFlag(t *testing.T) {
	code, out, errOut := runCLI(t, "-crossval", "mp3d", "-scale", "quick", "-quiet", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "cross-validation: mp3d") || !strings.Contains(out, "max |err|") {
		t.Errorf("crossval table missing from stdout:\n%s", out)
	}
	if !strings.Contains(errOut, "within analytic accuracy bounds") {
		t.Errorf("verdict missing from stderr:\n%s", errOut)
	}

	code, _, errOut = runCLI(t, "-crossval", "fft")
	if code != 1 || !strings.Contains(errOut, "unknown workload") {
		t.Errorf("unknown crossval workload: exit %d, stderr:\n%s", code, errOut)
	}
}
