// Command scctrace inspects the workload reference traces: footprint,
// read/write mix, sharing, and per-processor balance. It answers "what
// does this application look like to the memory system?" without running
// the multiprocessor simulator.
//
// Usage:
//
//	scctrace -workload barnes-hut -procs 8
//	scctrace -workload all -procs 8 -scale quick
//	scctrace -workload mp3d -procs 4 -dump mp3d.scct   # serialize a trace
//	scctrace -read mp3d.scct                           # profile a saved trace
//
// Trace profiles go to stdout; every diagnostic (file-written notices,
// errors) goes to stderr, so stdout can be piped or redirected cleanly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sccsim"
	"sccsim/internal/trace"
)

// stdout receives trace profiles only; stderr receives every
// diagnostic. Tests swap them to assert the separation.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli is the whole command behind main, parameterized for tests: it
// parses args, runs, and returns the process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("scctrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "all", "barnes-hut | mp3d | cholesky | all")
	procs := fs.Int("procs", 8, "logical processors to partition across")
	scaleName := fs.String("scale", "paper", `problem scale: "paper" or "quick"`)
	seed := fs.Int64("seed", 1, "workload generator seed")
	dump := fs.String("dump", "", "write the generated trace to this file (single workload only)")
	readFile := fs.String("read", "", "profile a previously dumped trace file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *readFile != "" {
		f, err := os.Open(*readFile)
		if err != nil {
			fmt.Fprintf(stderr, "scctrace: %v\n", err)
			return 1
		}
		defer f.Close()
		prog, err := trace.ReadProgram(f)
		if err != nil {
			fmt.Fprintf(stderr, "scctrace: %v\n", err)
			return 1
		}
		describeProgram(prog)
		return 0
	}

	var scale sccsim.Scale
	switch *scaleName {
	case "paper":
		scale = sccsim.PaperScale()
	case "quick":
		scale = sccsim.QuickScale()
	default:
		fmt.Fprintf(stderr, "scctrace: unknown scale %q\n", *scaleName)
		return 2
	}
	scale.Seed = *seed

	names := []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky}
	if *workload != "all" {
		names = []sccsim.Workload{sccsim.Workload(*workload)}
	}
	if *dump != "" && len(names) != 1 {
		fmt.Fprintln(stderr, "scctrace: -dump needs a single -workload")
		return 2
	}
	for _, w := range names {
		if err := describe(w, *procs, scale, *dump); err != nil {
			fmt.Fprintf(stderr, "scctrace: %v\n", err)
			return 1
		}
	}
	return 0
}

func describe(w sccsim.Workload, procs int, scale sccsim.Scale, dump string) error {
	prog, err := sccsim.GenerateTrace(w, procs, scale)
	if err != nil {
		return err
	}
	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prog.EncodeTo(f); err != nil {
			return err
		}
		// A diagnostic, not data: stderr, so stdout stays the profile.
		fmt.Fprintf(stderr, "scctrace: wrote %s trace to %s\n", w, dump)
	}
	describeProgram(prog)
	return nil
}

func describeProgram(prog *trace.Program) {
	p := sccsim.AnalyzeTrace(prog)
	fmt.Fprintf(stdout, "%s (%d processors)\n", prog.Name, prog.Procs)
	fmt.Fprintf(stdout, "  references      %d (%.1f%% writes)\n", p.RefTotal(), 100*p.WriteFrac())
	fmt.Fprintf(stdout, "  compute cycles  %d (%.2f refs/instr)\n", p.ComputeCycles,
		float64(p.RefTotal())/float64(p.ComputeCycles+p.RefTotal()))
	fmt.Fprintf(stdout, "  footprint       %d KB (%d lines)\n", p.FootprintBytes()/1024, p.FootprintLines)
	fmt.Fprintf(stdout, "  shared lines    %.1f%% of footprint (%.1f%% write-shared)\n",
		100*p.SharedFrac(), 100*float64(p.WriteSharedLines)/float64(max(1, p.FootprintLines)))
	var minR, maxR uint64
	minR = ^uint64(0)
	for _, pp := range p.PerProc {
		r := pp.Reads + pp.Writes
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	fmt.Fprintf(stdout, "  balance         min/max refs per processor = %d/%d\n\n", minR, maxR)
}
