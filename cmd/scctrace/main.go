// Command scctrace inspects the workload reference traces: footprint,
// read/write mix, sharing, and per-processor balance. It answers "what
// does this application look like to the memory system?" without running
// the multiprocessor simulator.
//
// Usage:
//
//	scctrace -workload barnes-hut -procs 8
//	scctrace -workload all -procs 8 -scale quick
//	scctrace -workload mp3d -procs 4 -dump mp3d.scct   # serialize a trace
//	scctrace -read mp3d.scct                           # profile a saved trace
package main

import (
	"flag"
	"fmt"
	"os"

	"sccsim"
	"sccsim/internal/trace"
)

func main() {
	workload := flag.String("workload", "all", "barnes-hut | mp3d | cholesky | all")
	procs := flag.Int("procs", 8, "logical processors to partition across")
	scaleName := flag.String("scale", "paper", `problem scale: "paper" or "quick"`)
	seed := flag.Int64("seed", 1, "workload generator seed")
	dump := flag.String("dump", "", "write the generated trace to this file (single workload only)")
	readFile := flag.String("read", "", "profile a previously dumped trace file and exit")
	flag.Parse()

	if *readFile != "" {
		f, err := os.Open(*readFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scctrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		prog, err := trace.ReadProgram(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scctrace: %v\n", err)
			os.Exit(1)
		}
		describeProgram(prog)
		return
	}

	var scale sccsim.Scale
	switch *scaleName {
	case "paper":
		scale = sccsim.PaperScale()
	case "quick":
		scale = sccsim.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "scctrace: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	names := []sccsim.Workload{sccsim.BarnesHut, sccsim.MP3D, sccsim.Cholesky}
	if *workload != "all" {
		names = []sccsim.Workload{sccsim.Workload(*workload)}
	}
	if *dump != "" && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "scctrace: -dump needs a single -workload")
		os.Exit(2)
	}
	for _, w := range names {
		if err := describe(w, *procs, scale, *dump); err != nil {
			fmt.Fprintf(os.Stderr, "scctrace: %v\n", err)
			os.Exit(1)
		}
	}
}

func describe(w sccsim.Workload, procs int, scale sccsim.Scale, dump string) error {
	prog, err := sccsim.GenerateTrace(w, procs, scale)
	if err != nil {
		return err
	}
	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prog.EncodeTo(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s trace to %s\n", w, dump)
	}
	describeProgram(prog)
	return nil
}

func describeProgram(prog *trace.Program) {
	p := sccsim.AnalyzeTrace(prog)
	fmt.Printf("%s (%d processors)\n", prog.Name, prog.Procs)
	fmt.Printf("  references      %d (%.1f%% writes)\n", p.RefTotal(), 100*p.WriteFrac())
	fmt.Printf("  compute cycles  %d (%.2f refs/instr)\n", p.ComputeCycles,
		float64(p.RefTotal())/float64(p.ComputeCycles+p.RefTotal()))
	fmt.Printf("  footprint       %d KB (%d lines)\n", p.FootprintBytes()/1024, p.FootprintLines)
	fmt.Printf("  shared lines    %.1f%% of footprint (%.1f%% write-shared)\n",
		100*p.SharedFrac(), 100*float64(p.WriteSharedLines)/float64(max(1, p.FootprintLines)))
	var minR, maxR uint64
	minR = ^uint64(0)
	for _, pp := range p.PerProc {
		r := pp.Reads + pp.Writes
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	fmt.Printf("  balance         min/max refs per processor = %d/%d\n\n", minR, maxR)
}
