package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI captures the command's stdout and stderr separately.
func runCLI(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = nil, nil }()
	return cli(args), outBuf.String(), errBuf.String()
}

// TestStreamSeparation: the trace profile is exactly stdout; the
// file-written diagnostic for -dump goes to stderr, so redirecting
// stdout yields a clean profile.
func TestStreamSeparation(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "mp3d.scct")
	code, out, errOut := runCLI(t,
		"-workload", "mp3d", "-procs", "4", "-scale", "quick", "-dump", dump)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "references") || !strings.Contains(out, "footprint") {
		t.Errorf("stdout missing the profile:\n%s", out)
	}
	if strings.Contains(out, "wrote") {
		t.Errorf("file-written diagnostic leaked to stdout:\n%s", out)
	}
	if !strings.Contains(errOut, "wrote mp3d trace to "+dump) {
		t.Errorf("stderr missing the file-written diagnostic:\n%s", errOut)
	}

	// The dumped trace round-trips through -read, profile again on stdout.
	code, out, errOut = runCLI(t, "-read", dump)
	if code != 0 {
		t.Fatalf("-read exit code %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "references") {
		t.Errorf("-read stdout missing the profile:\n%s", out)
	}
	if errOut != "" {
		t.Errorf("-read wrote diagnostics with nothing to report:\n%s", errOut)
	}
}

// TestErrorsGoToStderr: failures report on stderr with a non-zero exit
// and leave stdout empty.
func TestErrorsGoToStderr(t *testing.T) {
	cases := [][]string{
		{"-workload", "fft", "-procs", "4"},
		{"-scale", "huge"},
		{"-read", filepath.Join(t.TempDir(), "missing.scct")},
		{"-dump", "x.scct"}, // -dump with -workload all
	}
	for _, args := range cases {
		code, out, errOut := runCLI(t, args...)
		if code == 0 {
			t.Errorf("args %v: exit code 0, want non-zero", args)
		}
		if out != "" {
			t.Errorf("args %v: error output leaked to stdout:\n%s", args, out)
		}
		if !strings.Contains(errOut, "scctrace:") {
			t.Errorf("args %v: stderr missing the error:\n%s", args, errOut)
		}
	}
}
