package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sccsim/internal/serve"
)

// TestServeSmoke boots the real command on an ephemeral port, runs one
// tiny sweep over HTTP, and shuts it down through the same drain path a
// signal takes — asserting that stdout stays empty and diagnostics land
// on stderr.
func TestServeSmoke(t *testing.T) {
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = nil, nil }()

	ready := make(chan net.Addr, 1)
	testHookReady = func(addr net.Addr) { ready <- addr }
	defer func() { testHookReady = func(net.Addr) {} }()

	exit := make(chan int, 1)
	go func() {
		exit <- cli([]string{"-addr", "127.0.0.1:0", "-workers", "1"})
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr.String()

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", hr.StatusCode)
	}

	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(
		`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":21}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d, want 200", resp.StatusCode)
	}
	var env struct {
		Status string          `json:"status"`
		Grid   json.RawMessage `json:"grid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Status != "done" || len(env.Grid) == 0 {
		t.Fatalf("sweep response status %q with %d grid bytes, want done with a grid", env.Status, len(env.Grid))
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Error("sweep response missing X-Request-ID header")
	}

	// The Prometheus rendering of /metrics is a content-negotiation away.
	mreq, _ := http.NewRequest("GET", base+"/metrics", nil)
	mreq.Header.Set("Accept", "text/plain")
	mr, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	_, _ = prom.ReadFrom(mr.Body)
	mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("prometheus content type = %q", ct)
	}
	if !strings.Contains(prom.String(), "# TYPE serve_jobs_done counter") {
		t.Errorf("prometheus exposition missing serve_jobs_done:\n%s", prom.String())
	}

	close(testHookShutdown)
	defer func() { testHookShutdown = make(chan struct{}) }()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0 (stderr: %s)", code, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	if outBuf.Len() != 0 {
		t.Errorf("stdout not empty: %q", outBuf.String())
	}
	es := errBuf.String()
	if !strings.Contains(es, "listening on") || !strings.Contains(es, "drained cleanly") {
		t.Errorf("stderr missing lifecycle diagnostics:\n%s", es)
	}
}

// TestServeJoinRegistersWithCoordinator boots a coordinator and a
// -join worker, and asserts the worker appears in the coordinator's
// registry and advertises the URL it was told to.
func TestServeJoinRegistersWithCoordinator(t *testing.T) {
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = nil, nil }()

	coord := httptest.NewServer(serve.New(serve.Options{}))
	defer coord.Close()

	ready := make(chan net.Addr, 1)
	testHookReady = func(addr net.Addr) { ready <- addr }
	defer func() { testHookReady = func(net.Addr) {} }()

	exit := make(chan int, 1)
	go func() {
		exit <- cli([]string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-join", coord.URL, "-advertise", "http://worker-under-test:1"})
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not start")
	}

	cr, err := http.Get(coord.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Body.Close()
	var st serve.ClusterStatus
	if err := json.NewDecoder(cr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 1 || st.Workers[0].URL != "http://worker-under-test:1" {
		t.Fatalf("coordinator registry %+v, want the advertised worker", st.Workers)
	}

	close(testHookShutdown)
	defer func() { testHookShutdown = make(chan struct{}) }()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0 (stderr: %s)", code, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not shut down")
	}
	if !strings.Contains(errBuf.String(), "joined "+coord.URL) {
		t.Errorf("stderr missing join diagnostic:\n%s", errBuf.String())
	}
}

// TestServeJoinFlagValidation: -join without -advertise is a usage
// error, and an unreachable coordinator is a startup failure.
func TestServeJoinFlagValidation(t *testing.T) {
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = nil, nil }()

	if code := cli([]string{"-join", "http://coord:1"}); code != 2 {
		t.Errorf("-join without -advertise: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "-advertise") {
		t.Errorf("usage error does not mention -advertise:\n%s", errBuf.String())
	}

	errBuf.Reset()
	code := cli([]string{"-addr", "127.0.0.1:0",
		"-join", "http://127.0.0.1:1", "-advertise", "http://self:1"})
	if code != 1 {
		t.Errorf("unreachable coordinator: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "joining") {
		t.Errorf("stderr missing join failure:\n%s", errBuf.String())
	}
}
