// Command sccserve runs the simulation service: the sccsim design-space
// API behind HTTP/JSON, with job deduplication, backpressure and result
// caching (see internal/serve and docs/API.md).
//
// Usage:
//
//	sccserve -addr :8347
//	sccserve -addr :8347 -workers 4 -queue 16 -trace-cache /var/cache/scc
//
// Cluster mode (see docs/API.md §Cluster): any node accepts worker
// registrations and shards its sweeps across them; a node becomes a
// worker of another with -join/-advertise:
//
//	sccserve -addr :8347 -trace-cache /var/cache/scc                # coordinator
//	sccserve -addr :8348 -join http://coord:8347 \
//	         -advertise http://worker-a:8348                        # worker
//
// Routes:
//
//	POST /v1/sweep             full design-space sweep (sync, async or NDJSON stream)
//	GET  /v1/sweep/{id}        async job status and result
//	POST /v1/point             one design point
//	POST /v1/cluster/register  worker registration and heartbeat
//	GET  /v1/cluster           registered workers
//	GET  /v1/trace/{digest}    content-addressed trace cache entry
//	GET  /healthz              liveness and queue state
//	GET  /metrics              metrics registry (JSON, or Prometheus text via Accept)
//	GET  /debug/requests       ring buffer of recent requests with span timings
//
// Observability: every request carries an X-Request-ID (generated when
// the caller sends none) that appears in the response header, the
// structured JSON logs on stderr (-log-level debug|info|warn|error),
// the job record, and — with -manifest-dir — the run manifest written
// for each sweep job. -debug-addr serves net/http/pprof and expvar on a
// side listener, mirroring sccexplore.
//
// The process exits cleanly on SIGINT/SIGTERM: new submissions are
// refused while admitted jobs drain, bounded by -drain-timeout.
// Diagnostics go to stderr; stdout is never written, so the process
// composes with service managers that capture streams separately.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sccsim/internal/obs"
	"sccsim/internal/serve"
)

// stdout is reserved for data (sccserve emits none); stderr receives
// every diagnostic. Tests swap them to assert the separation.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// testHookReady is called with the bound address once the server is
// accepting connections, and testHookShutdown lets tests request the
// same drain path a signal would. Both are no-ops in production.
var (
	testHookReady    = func(addr net.Addr) {}
	testHookShutdown = make(chan struct{})
)

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli is the whole command behind main, parameterized for tests: it
// parses args, serves until interrupted, drains, and returns the
// process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("sccserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8347", "listen address")
	workers := fs.Int("workers", 0, "jobs executed concurrently (0 = service default of 2)")
	queue := fs.Int("queue", 0, "admitted jobs waiting for a worker before 429 (0 = default of 8)")
	cacheEntries := fs.Int("cache-entries", 0, "completed results kept in the LRU cache (0 = default of 32)")
	jobTimeout := fs.Duration("job-timeout", 0, "hard cap on any single job (0 = default of 15m)")
	parallel := fs.Int("parallel", 0, "engine worker-pool size per sweep (0 = GOMAXPROCS); results are identical for any value")
	traceCacheDir := fs.String("trace-cache", "", "persist generated workload traces in this directory, shared by all jobs")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long shutdown waits for running jobs before cancelling them")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	manifestDir := fs.String("manifest-dir", "", "write each sweep job's run manifest to <dir>/<job-id>.json, stamped with its request ID")
	logLevel := fs.String("log-level", "info", "structured log level on stderr: debug, info, warn or error")
	join := fs.String("join", "", "run as a worker of the coordinator at this base URL: register, heartbeat, and fetch missing traces from it")
	advertise := fs.String("advertise", "", "base URL the coordinator should reach this node at (required with -join)")
	heartbeatTTL := fs.Duration("heartbeat-ttl", 0, "drop workers not heard from for this long (0 = default of 15s)")
	pointTimeout := fs.Duration("point-timeout", 0, "cap on each remote point attempt when sharding sweeps (0 = default of 2m)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *join != "" && *advertise == "" {
		fmt.Fprintln(stderr, "sccserve: -join requires -advertise (the URL the coordinator reaches this node at)")
		return 2
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "sccserve: %v\n", err)
		return 2
	}
	if *manifestDir != "" {
		if err := os.MkdirAll(*manifestDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "sccserve: manifest dir: %v\n", err)
			return 1
		}
	}

	svc := serve.New(serve.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cacheEntries,
		JobTimeout:    *jobTimeout,
		Parallelism:   *parallel,
		TraceCacheDir: *traceCacheDir,
		Logger:        obs.NewJSONLogger(stderr, level),
		ManifestDir:   *manifestDir,
		Cluster: serve.ClusterOptions{
			HeartbeatTTL:   *heartbeatTTL,
			PointTimeoutMS: pointTimeout.Milliseconds(),
			PeerTraceURL:   *join,
		},
	})
	if *debugAddr != "" {
		// Guard against re-registration when tests run cli repeatedly —
		// expvar.Publish panics on duplicate names.
		if expvar.Get("sccsim") == nil {
			expvar.Publish("sccsim", expvar.Func(func() any { return svc.Metrics().Snapshot() }))
		}
		go func() {
			// DefaultServeMux carries both the pprof handlers (via the
			// package import) and expvar's /debug/vars.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(stderr, "sccserve: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "sccserve: pprof and expvar on http://%s/debug/\n", *debugAddr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "sccserve: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stderr, "sccserve: listening on http://%s\n", ln.Addr())
	if *join != "" {
		ttl, err := serve.RegisterWorker(ctx, *join, *advertise)
		if err != nil {
			fmt.Fprintf(stderr, "sccserve: joining %s: %v\n", *join, err)
			return 1
		}
		fmt.Fprintf(stderr, "sccserve: joined %s as %s (heartbeat TTL %v)\n", *join, *advertise, ttl)
		go serve.HeartbeatLoop(ctx, *join, *advertise)
	}
	testHookReady(ln.Addr())

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "sccserve: %v\n", err)
		return 1
	case <-ctx.Done():
	case <-testHookShutdown:
	}
	stop()

	fmt.Fprintf(stderr, "sccserve: shutting down, draining jobs (up to %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and finish in-flight HTTP exchanges, then drain the
	// job queue itself.
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "sccserve: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "sccserve: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "sccserve: drained cleanly")
	return 0
}
