package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadSmoke runs a scaled-down chaos load against the committed
// baseline and asserts a clean exit with a well-formed summary. This is
// the same path `make load-check` takes, at 1/10 the request count.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness in -short mode")
	}
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = os.Stdout, os.Stderr }()

	code := cli([]string{"-requests", "120", "-concurrency", "16", "-workers", "2",
		"-baseline", "../../BENCH_load.json"})
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	var sum Summary
	if err := json.Unmarshal(outBuf.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, outBuf.String())
	}
	if sum.Requests != 120 || sum.Succeeded+sum.Shed+sum.Failed != 120 {
		t.Errorf("summary does not account for every request: %+v", sum)
	}
	if sum.Sweeps == 0 || sum.Points == 0 || sum.Searches == 0 {
		t.Errorf("mix missing a request kind: %+v", sum)
	}
	if sum.IdentityViolations != 0 {
		t.Errorf("%d identity violations", sum.IdentityViolations)
	}
}

// TestBoundsGate: an impossible baseline makes the run exit 1 and name
// the violated bound; a malformed baseline is rejected up front.
func TestBoundsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness in -short mode")
	}
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = os.Stdout, os.Stderr }()

	dir := t.TempDir()
	impossible := filepath.Join(dir, "impossible.json")
	if err := os.WriteFile(impossible,
		[]byte(`{"max_p99_ms":0.001,"max_shed_rate":1,"min_success_rate":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code := cli([]string{"-requests", "40", "-concurrency", "8", "-workers", "1",
		"-chaos=false", "-baseline", impossible})
	if code != 1 {
		t.Fatalf("impossible bounds: exit %d, want 1\nstderr:\n%s", code, errBuf.String())
	}
	if !bytes.Contains(errBuf.Bytes(), []byte("VIOLATION")) ||
		!bytes.Contains(errBuf.Bytes(), []byte("max_p99_ms")) {
		t.Errorf("violation not named:\n%s", errBuf.String())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"max_p99_ms":1,"unknown":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errBuf.Reset()
	if code := cli([]string{"-baseline", bad}); code != 1 {
		t.Errorf("malformed baseline: exit %d, want 1", code)
	}
}

// TestUsageErrors: bad flags are usage errors (exit 2), not failures.
func TestUsageErrors(t *testing.T) {
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = os.Stdout, os.Stderr }()
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-concurrency", "-1"},
		{"-nosuchflag"},
	} {
		if code := cli(args); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
