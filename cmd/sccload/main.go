// Command sccload is the load and chaos harness for the sccserve
// cluster: it boots an in-process coordinator with N workers (the
// clustertest fixture — real serve.Servers behind real HTTP listeners),
// fires a mixed stream of concurrent sweep, point and search requests
// at the coordinator while killing/restarting workers and injecting
// network latency, and gates the result against committed bounds.
//
// Usage:
//
//	sccload                                   # defaults: 3 workers, 1200 requests
//	sccload -requests 2000 -concurrency 128 -chaos=false
//	sccload -baseline BENCH_load.json         # exit 1 when a bound is violated
//
// What it asserts:
//
//   - Availability: every request is answered — success, or an orderly
//     shed (429). Transport errors and 5xx responses are failures.
//   - Latency: p99 over successful requests stays under the baseline's
//     max_p99_ms.
//   - Shed rate: the fraction of 429s stays under max_shed_rate, and
//     the success rate stays over min_success_rate.
//   - Byte identity: every successful sweep response for the same
//     request key carries byte-identical grid JSON — under concurrency,
//     coalescing, result-cache reuse, worker kills and retries alike.
//
// The summary is printed as JSON on stdout; diagnostics go to stderr.
// Exit status: 0 when all bounds hold, 1 on a violation or harness
// failure, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sccsim/internal/serve"
	"sccsim/internal/serve/clustertest"
)

var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// Bounds are the committed acceptance thresholds (BENCH_load.json).
// Generous by design: this gate catches order-of-magnitude regressions
// — lost availability, unbounded latency, identity violations — on
// shared CI machines, not small perf drifts.
type Bounds struct {
	// MaxP99MS caps the p99 latency of successful requests.
	MaxP99MS float64 `json:"max_p99_ms"`
	// MaxShedRate caps the fraction of requests shed with 429.
	MaxShedRate float64 `json:"max_shed_rate"`
	// MinSuccessRate floors the fraction of requests answered 2xx.
	MinSuccessRate float64 `json:"min_success_rate"`
}

// Summary is the run's result, printed as JSON.
type Summary struct {
	Requests    int     `json:"requests"`
	Sweeps      int     `json:"sweeps"`
	Points      int     `json:"points"`
	Searches    int     `json:"searches"`
	Succeeded   int     `json:"succeeded"`
	Shed        int     `json:"shed"`
	Failed      int     `json:"failed"`
	SuccessRate float64 `json:"success_rate"`
	ShedRate    float64 `json:"shed_rate"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	WallMS      float64 `json:"wall_ms"`
	Kills       int     `json:"kills"`
	Restarts    int     `json:"restarts"`
	SlowFaults  int     `json:"slow_faults"`
	// IdentityKeys counts distinct sweep keys that completed more than
	// once; IdentityViolations counts keys whose grids disagreed.
	IdentityKeys       int      `json:"identity_keys"`
	IdentityViolations int      `json:"identity_violations"`
	Violations         []string `json:"violations,omitempty"`
}

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli runs the whole harness and returns the process exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("sccload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 3, "in-process worker nodes behind the coordinator")
	requests := fs.Int("requests", 1200, "total requests to issue")
	concurrency := fs.Int("concurrency", 64, "concurrent in-flight requests")
	chaos := fs.Bool("chaos", true, "kill/restart workers and inject latency during the run")
	seed := fs.Int64("seed", 1, "workload-mix seed")
	baseline := fs.String("baseline", "", "bounds file (BENCH_load.json); empty skips the gate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests <= 0 || *concurrency <= 0 || *workers <= 0 {
		fmt.Fprintln(stderr, "sccload: -requests, -concurrency and -workers must be positive")
		return 2
	}
	var bounds *Bounds
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "sccload: baseline: %v\n", err)
			return 1
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		bounds = new(Bounds)
		if err := dec.Decode(bounds); err != nil {
			fmt.Fprintf(stderr, "sccload: baseline %s: %v\n", *baseline, err)
			return 1
		}
	}

	sum, err := run(*workers, *requests, *concurrency, *chaos, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "sccload: %v\n", err)
		return 1
	}
	if bounds != nil {
		sum.Violations = check(sum, bounds)
	}
	if sum.IdentityViolations > 0 {
		sum.Violations = append(sum.Violations, fmt.Sprintf(
			"byte identity: %d sweep key(s) returned differing grids", sum.IdentityViolations))
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(stderr, "sccload: %v\n", err)
		return 1
	}
	if len(sum.Violations) > 0 {
		for _, v := range sum.Violations {
			fmt.Fprintf(stderr, "sccload: VIOLATION: %s\n", v)
		}
		return 1
	}
	fmt.Fprintln(stderr, "sccload: all bounds hold")
	return 0
}

// check compares a summary against bounds and names every violation.
func check(s *Summary, b *Bounds) []string {
	var v []string
	if b.MaxP99MS > 0 && s.P99MS > b.MaxP99MS {
		v = append(v, fmt.Sprintf("p99 %.1fms exceeds max_p99_ms %.1f", s.P99MS, b.MaxP99MS))
	}
	if s.ShedRate > b.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.3f exceeds max_shed_rate %.3f", s.ShedRate, b.MaxShedRate))
	}
	if s.SuccessRate < b.MinSuccessRate {
		v = append(v, fmt.Sprintf("success rate %.3f below min_success_rate %.3f", s.SuccessRate, b.MinSuccessRate))
	}
	if s.Failed > 0 {
		v = append(v, fmt.Sprintf("%d request(s) failed outright (transport error or 5xx)", s.Failed))
	}
	return v
}

// reqKind is one entry of the workload mix.
type reqKind int

const (
	kindPoint reqKind = iota
	kindSweep
	kindSearch
)

// mix returns the request kind for slot i: mostly cheap points, with
// sweeps and searches mixed in. Sweeps and searches reuse a small seed
// set so coalescing, the result cache and the identity check all
// engage under concurrency.
func mix(i int) reqKind {
	switch {
	case i%10 == 3 || i%10 == 7:
		return kindSweep
	case i%20 == 11:
		return kindSearch
	default:
		return kindPoint
	}
}

// body builds the request body and key for slot i of the mix.
func body(rng *rand.Rand, kind reqKind, i int) (path, payload, key string) {
	switch kind {
	case kindSweep:
		// Four distinct sweep experiments: enough concurrency per key
		// for coalescing and identity checks, few enough that jobs
		// repeat.
		seed := 100 + i%4
		return "/v1/sweep",
			fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d}}`, seed),
			fmt.Sprintf("sweep-%d", seed)
	case kindSearch:
		seed := 200 + i%2
		return "/v1/search",
			fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d},`+
				`"search":{"space":{"procs_per_cluster":[1,2],"scc_bytes":[8192,16384]}}}`, seed),
			fmt.Sprintf("search-%d", seed)
	default:
		// Points are the bulk: random design points on a tiny scale.
		procs := []int{1, 2, 4, 8}[rng.Intn(4)]
		bytes := []int{8192, 16384, 32768}[rng.Intn(3)]
		seed := 300 + rng.Intn(8)
		return "/v1/point",
			fmt.Sprintf(`{"workload":"multiprog","scale_spec":{"multiprog_refs":6000,"seed":%d},`+
				`"procs_per_cluster":%d,"scc_bytes":%d}`, seed, procs, bytes),
			""
	}
}

// run boots the cluster, fires the load, and aggregates the summary.
func run(workers, requests, concurrency int, chaos bool, seed int64) (*Summary, error) {
	cluster, stop, err := clustertest.New(clustertest.Options{
		Workers:        workers,
		PointTimeoutMS: 10_000,
		Coordinator: serve.Options{
			Workers:    4,
			QueueDepth: 256,
			// Chaos retries must be fast: a killed worker costs one
			// connection error, then cooldown keeps it out of rotation.
			Cluster: serve.ClusterOptions{Retries: 1, BackoffMS: 5},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("booting cluster: %w", err)
	}
	defer stop()
	fmt.Fprintf(stderr, "sccload: cluster up: coordinator %s, %d workers\n", cluster.URL, workers)

	sum := &Summary{Requests: requests}
	var (
		mu        sync.Mutex
		latencies []float64
		grids     = map[string][]byte{} // sweep key -> first grid seen
	)
	client := &http.Client{Timeout: 2 * time.Minute}

	// Chaos: a background loop that kills a worker, restarts it a beat
	// later, and moves a slow-network fault around the fleet.
	chaosDone := make(chan struct{})
	var chaosStop atomic.Bool
	if chaos && workers > 0 {
		go func() {
			defer close(chaosDone)
			rng := rand.New(rand.NewSource(seed ^ 0x5cc10ad))
			for !chaosStop.Load() {
				w := cluster.Workers[rng.Intn(len(cluster.Workers))]
				switch rng.Intn(3) {
				case 0:
					w.Kill()
					mu.Lock()
					sum.Kills++
					mu.Unlock()
					time.Sleep(150 * time.Millisecond)
					w.Restart()
					mu.Lock()
					sum.Restarts++
					mu.Unlock()
				case 1:
					w.SetDelay(50 * time.Millisecond)
					mu.Lock()
					sum.SlowFaults++
					mu.Unlock()
					time.Sleep(200 * time.Millisecond)
					w.SetDelay(0)
				default:
					time.Sleep(100 * time.Millisecond)
				}
			}
			for _, w := range cluster.Workers {
				w.Restart()
				w.SetDelay(0)
			}
		}()
	} else {
		close(chaosDone)
	}

	start := time.Now()
	var wg sync.WaitGroup
	slots := make(chan int)
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := range slots {
				kind := mix(i)
				path, payload, key := body(rng, kind, i)
				t0 := time.Now()
				resp, err := client.Post(cluster.URL+path, "application/json", strings.NewReader(payload))
				elapsed := time.Since(t0)
				mu.Lock()
				switch kind {
				case kindSweep:
					sum.Sweeps++
				case kindSearch:
					sum.Searches++
				default:
					sum.Points++
				}
				mu.Unlock()
				if err != nil {
					mu.Lock()
					sum.Failed++
					mu.Unlock()
					continue
				}
				raw, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
				resp.Body.Close()
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusOK:
					sum.Succeeded++
					latencies = append(latencies, float64(elapsed.Milliseconds()))
					if kind == kindSweep && key != "" {
						var env struct {
							Grid json.RawMessage `json:"grid"`
						}
						if json.Unmarshal(raw, &env) == nil && len(env.Grid) > 0 {
							if prev, ok := grids[key]; !ok {
								grids[key] = append([]byte(nil), env.Grid...)
							} else {
								sum.IdentityKeys++
								if !bytes.Equal(prev, env.Grid) {
									sum.IdentityViolations++
								}
							}
						}
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					sum.Shed++
				default:
					sum.Failed++
					fmt.Fprintf(stderr, "sccload: %s: status %d: %s\n",
						path, resp.StatusCode, firstLine(raw))
				}
				mu.Unlock()
			}
		}(c)
	}
	for i := 0; i < requests; i++ {
		slots <- i
	}
	close(slots)
	wg.Wait()
	chaosStop.Store(true)
	<-chaosDone
	sum.WallMS = float64(time.Since(start).Milliseconds())

	sort.Float64s(latencies)
	sum.P50MS = percentile(latencies, 0.50)
	sum.P99MS = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		sum.MaxMS = latencies[n-1]
	}
	sum.SuccessRate = float64(sum.Succeeded) / float64(requests)
	sum.ShedRate = float64(sum.Shed) / float64(requests)
	return sum, nil
}

// percentile reads p from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// firstLine trims an error payload to one log-friendly line.
func firstLine(raw []byte) string {
	s := strings.TrimSpace(string(raw))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
