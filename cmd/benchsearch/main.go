// Command benchsearch is the search-efficiency regression gate: it runs
// a fixed adaptive search over a ~16k-point synthetic design space and
// compares the run against the committed BENCH_search.json baseline —
// the enforcement half of the PR claim "same exact-backend frontier, a
// fraction of the exact simulations". `make bench-search` runs it in CI.
//
// The benchmark is one fixed experiment: Barnes-Hut at quick scale over
// the SCC size range 4K..512K in 128-byte steps crossed with the
// paper's processors-per-cluster axis (16260 candidates), adaptive
// strategy, exact-simulation budget 64, seed 1. The run must stay
// deterministic, so the gate checks three things against the baseline:
//
//   - results: the space size and the exact-confirmed frontier (points
//     and cycle counts) must match exactly — a drift means the search
//     or the simulator changed behavior;
//   - work: the exact-simulation and analytic-evaluation counts may not
//     regress more than -threshold (default 10%), and the exact count
//     must stay within 5% of the space — the PR's acceptance bound;
//   - time: the search's wall time, normalized by an exhaustive
//     calibration sweep measured in the same process (which also warms
//     the shared trace cache), may not regress more than
//     -wall-threshold. The normalization makes the committed number
//     transferable across machines — both numerator and denominator
//     scale with the host — and both are the minimum of three repeats
//     to damp scheduler noise; even so the ratio jitters, so its
//     threshold is looser than the count thresholds.
//
// Usage:
//
//	benchsearch -baseline BENCH_search.json          # compare (exit 1 on regression)
//	benchsearch -baseline BENCH_search.json -write   # regenerate the baseline
//
// Exit status: 0 within threshold, 1 on regression or drift, 2 on
// usage or read errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sccsim"
)

// The fixed benchmark experiment. Changing any of these constants
// invalidates the committed baseline — regenerate with -write.
const (
	benchWorkload = sccsim.BarnesHut
	benchSizeMin  = 4 * 1024
	benchSizeMax  = 512 * 1024
	benchSizeStep = 128
	benchBudget   = 64
	benchSeed     = 1

	// benchRepeats is how many times each timed phase runs; the minimum
	// wall time is kept. Repeats of the search must also agree exactly
	// on stats and frontier — a free determinism check.
	benchRepeats = 3
)

// benchSpec declares the benchmark search.
func benchSpec() sccsim.SearchSpec {
	return sccsim.SearchSpec{
		Space: sccsim.SearchSpace{
			SCCBytesMin:  benchSizeMin,
			SCCBytesMax:  benchSizeMax,
			SCCBytesStep: benchSizeStep,
		},
		Strategy: sccsim.SearchAdaptive,
		Budget:   benchBudget,
		Seed:     benchSeed,
	}
}

// frontierPoint is one baseline frontier entry.
type frontierPoint struct {
	PPC      int    `json:"procs_per_cluster"`
	SCCBytes int    `json:"scc_bytes"`
	Cycles   uint64 `json:"cycles"`
}

// baseline is the committed BENCH_search.json document.
type baseline struct {
	Version       int             `json:"version"`
	Workload      string          `json:"workload"`
	SpaceSize     int             `json:"space_size"`
	StaticPruned  int             `json:"static_pruned"`
	TriagePruned  int             `json:"triage_pruned"`
	AnalyticEvals int             `json:"analytic_evals"`
	ExactSims     int             `json:"exact_sims"`
	Rounds        int             `json:"rounds"`
	WallMS        int64           `json:"wall_ms"`
	CalibWallMS   int64           `json:"calib_wall_ms"`
	Frontier      []frontierPoint `json:"frontier"`
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("benchsearch", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_search.json", "baseline file to compare against (or write)")
	write := fs.Bool("write", false, "write the measured run as the new baseline instead of comparing")
	threshold := fs.Float64("threshold", 0.10, "allowed relative regression in work counts")
	wallThreshold := fs.Float64("wall-threshold", 0.75, "allowed relative regression in normalized wall time")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	cur, err := measure(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsearch: %v\n", err)
		return 2
	}
	report(cur)

	if *write {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsearch: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsearch: %v\n", err)
			return 2
		}
		fmt.Printf("benchsearch: wrote %s\n", *baselinePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsearch: reading baseline: %v (regenerate with -write)\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchsearch: parsing baseline: %v (regenerate with -write)\n", err)
		return 2
	}
	if errs := compare(&base, cur, *threshold, *wallThreshold); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "benchsearch: FAIL: %v\n", e)
		}
		return 1
	}
	fmt.Println("benchsearch: within threshold")
	return 0
}

// measure runs the calibration sweeps and then the benchmark searches,
// in that order: the first sweep warms the in-process trace cache, so
// the measured search wall time is search work, not trace generation.
// Both phases keep the minimum wall time over benchRepeats runs.
func measure(ctx context.Context) (*baseline, error) {
	scale := sccsim.QuickScale()
	scale.Seed = benchSeed

	var calibWall time.Duration
	for i := 0; i < benchRepeats; i++ {
		start := time.Now()
		if _, err := sccsim.SweepCtx(ctx, benchWorkload, sccsim.WithScale(scale)); err != nil {
			return nil, fmt.Errorf("calibration sweep: %w", err)
		}
		if d := time.Since(start); i == 0 || d < calibWall {
			calibWall = d
		}
	}

	var wall time.Duration
	var res *sccsim.SearchResult
	for i := 0; i < benchRepeats; i++ {
		start := time.Now()
		r, err := sccsim.SearchCtx(ctx, benchWorkload, benchSpec(), sccsim.WithScale(scale))
		if err != nil {
			return nil, fmt.Errorf("benchmark search: %w", err)
		}
		if d := time.Since(start); i == 0 || d < wall {
			wall = d
		}
		if i == 0 {
			res = r
		} else if err := sameRun(res, r); err != nil {
			return nil, fmt.Errorf("repeat %d diverged from repeat 1: %w", i+1, err)
		}
	}

	st := res.Stats
	b := &baseline{
		Version:       1,
		Workload:      string(benchWorkload),
		SpaceSize:     st.SpaceSize,
		StaticPruned:  st.StaticPruned,
		TriagePruned:  st.TriagePruned,
		AnalyticEvals: st.AnalyticEvals,
		ExactSims:     st.ExactSims,
		Rounds:        st.Rounds,
		WallMS:        wall.Milliseconds(),
		CalibWallMS:   calibWall.Milliseconds(),
	}
	for _, p := range res.Frontier {
		b.Frontier = append(b.Frontier, frontierPoint{PPC: p.PPC, SCCBytes: p.SCCBytes, Cycles: p.Cycles})
	}
	return b, nil
}

func report(b *baseline) {
	fmt.Printf("benchsearch: %s space %d  static-pruned %d  triage-pruned %d  analytic evals %d  exact sims %d  rounds %d  frontier %d\n",
		b.Workload, b.SpaceSize, b.StaticPruned, b.TriagePruned, b.AnalyticEvals, b.ExactSims, b.Rounds, len(b.Frontier))
	fmt.Printf("benchsearch: search wall %dms  calibration sweep wall %dms  normalized %.3f\n",
		b.WallMS, b.CalibWallMS, normalized(b))
}

// normalized is the machine-transferable time metric: search wall over
// calibration-sweep wall, both measured in the same process.
func normalized(b *baseline) float64 {
	if b.CalibWallMS <= 0 {
		return 0
	}
	return float64(b.WallMS) / float64(b.CalibWallMS)
}

// sameRun reports whether two search runs of the same spec agree on
// stats and frontier — the determinism the committed baseline depends
// on.
func sameRun(a, b *sccsim.SearchResult) error {
	if a.Stats != b.Stats {
		return fmt.Errorf("stats %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Frontier) != len(b.Frontier) {
		return fmt.Errorf("frontier sizes %d vs %d", len(a.Frontier), len(b.Frontier))
	}
	for i := range a.Frontier {
		p, q := a.Frontier[i], b.Frontier[i]
		if p.PPC != q.PPC || p.SCCBytes != q.SCCBytes || p.Cycles != q.Cycles {
			return fmt.Errorf("frontier point %d: %+v vs %+v", i, p.Candidate, q.Candidate)
		}
	}
	return nil
}

// compare checks the current run against the baseline, returning every
// violated criterion.
func compare(base, cur *baseline, threshold, wallThreshold float64) []error {
	var errs []error
	if cur.SpaceSize != base.SpaceSize {
		errs = append(errs, fmt.Errorf("space size %d, baseline %d — the benchmark space drifted (regenerate with -write if intentional)",
			cur.SpaceSize, base.SpaceSize))
	}
	if len(cur.Frontier) != len(base.Frontier) {
		errs = append(errs, fmt.Errorf("frontier has %d points, baseline %d", len(cur.Frontier), len(base.Frontier)))
	} else {
		for i, p := range cur.Frontier {
			if p != base.Frontier[i] {
				errs = append(errs, fmt.Errorf("frontier point %d = %+v, baseline %+v — search results changed", i, p, base.Frontier[i]))
			}
		}
	}
	// The acceptance bound is absolute, not relative: the budgeted
	// search must touch at most 5% of the space with the exact backend.
	if 20*cur.ExactSims > cur.SpaceSize {
		errs = append(errs, fmt.Errorf("%d exact sims on a %d-point space — above the 5%% acceptance bound",
			cur.ExactSims, cur.SpaceSize))
	}
	if grew(cur.ExactSims, base.ExactSims, threshold) {
		errs = append(errs, fmt.Errorf("exact sims %d, baseline %d — above the %.0f%% regression threshold",
			cur.ExactSims, base.ExactSims, threshold*100))
	}
	if grew(cur.AnalyticEvals, base.AnalyticEvals, threshold) {
		errs = append(errs, fmt.Errorf("analytic evals %d, baseline %d — above the %.0f%% regression threshold",
			cur.AnalyticEvals, base.AnalyticEvals, threshold*100))
	}
	bn, cn := normalized(base), normalized(cur)
	if bn > 0 && cn > bn*(1+wallThreshold) {
		errs = append(errs, fmt.Errorf("normalized wall %.3f, baseline %.3f — above the %.0f%% regression threshold",
			cn, bn, wallThreshold*100))
	}
	return errs
}

// grew reports whether cur exceeds base by more than the threshold
// fraction (with a one-unit absolute allowance so tiny counts don't
// trip on rounding).
func grew(cur, base int, threshold float64) bool {
	return float64(cur) > float64(base)*(1+threshold)+1
}
