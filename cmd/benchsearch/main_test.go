package main

import (
	"strings"
	"testing"

	"sccsim"
)

func benchBase() *baseline {
	return &baseline{
		Version:       1,
		Workload:      "barnes-hut",
		SpaceSize:     16260,
		AnalyticEvals: 1500,
		ExactSims:     64,
		WallMS:        2000,
		CalibWallMS:   500,
		Frontier:      []frontierPoint{{PPC: 4, SCCBytes: 65536, Cycles: 100}},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	b := benchBase()
	if errs := compare(b, benchBase(), 0.10, 0.75); len(errs) != 0 {
		t.Errorf("identical runs flagged: %v", errs)
	}
}

func TestCompareFlagsEachRegression(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*baseline)
		want string
	}{
		{"space drift", func(b *baseline) { b.SpaceSize = 16000 }, "space"},
		{"frontier size", func(b *baseline) { b.Frontier = nil }, "frontier"},
		{"frontier point", func(b *baseline) { b.Frontier[0].Cycles = 101 }, "frontier"},
		{"exact sims", func(b *baseline) { b.ExactSims = 80 }, "exact sims"},
		{"five percent bound", func(b *baseline) { b.ExactSims = 900 }, "5%"},
		{"analytic evals", func(b *baseline) { b.AnalyticEvals = 2000 }, "analytic"},
		{"normalized wall", func(b *baseline) { b.WallMS = 8000 }, "wall"},
	}
	for _, tc := range cases {
		cur := benchBase()
		tc.mut(cur)
		errs := compare(benchBase(), cur, 0.10, 0.75)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error mentioning %q in %v", tc.name, tc.want, errs)
		}
	}
}

func TestGrew(t *testing.T) {
	// One-unit absolute allowance: 11 vs 10 at 0% is not growth.
	if grew(11, 10, 0) {
		t.Error("grew(11, 10, 0) = true")
	}
	if !grew(12, 10, 0) {
		t.Error("grew(12, 10, 0) = false")
	}
	if grew(71, 64, 0.10) {
		t.Error("grew(71, 64, 0.10) = true, 71 <= 64*1.1+1")
	}
	if !grew(100, 64, 0.10) {
		t.Error("grew(100, 64, 0.10) = false")
	}
}

func TestSameRun(t *testing.T) {
	a := &sccsim.SearchResult{
		Stats:    sccsim.SearchStats{ExactSims: 3},
		Frontier: []sccsim.SearchPoint{{Candidate: sccsim.SearchCandidate{PPC: 2, SCCBytes: 8192}, Cycles: 10}},
	}
	b := &sccsim.SearchResult{
		Stats:    sccsim.SearchStats{ExactSims: 3},
		Frontier: []sccsim.SearchPoint{{Candidate: sccsim.SearchCandidate{PPC: 2, SCCBytes: 8192}, Cycles: 10}},
	}
	if err := sameRun(a, b); err != nil {
		t.Errorf("identical runs differ: %v", err)
	}
	b.Frontier[0].Cycles = 11
	if sameRun(a, b) == nil {
		t.Error("cycle drift not detected")
	}
	b.Frontier[0].Cycles = 10
	b.Stats.ExactSims = 4
	if sameRun(a, b) == nil {
		t.Error("stats drift not detected")
	}
}

// TestBenchSpecValid pins that the committed benchmark experiment is an
// accepted spec with a >= 10^4-point space.
func TestBenchSpecValid(t *testing.T) {
	spec := benchSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("benchmark spec invalid: %v", err)
	}
	sizes := (benchSizeMax-benchSizeMin)/benchSizeStep + 1
	if pts := sizes * 4; pts < 10_000 {
		t.Errorf("benchmark space has %d points, want >= 10^4", pts)
	}
}
