package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sccsim/internal/serve"
)

func runCLI(t *testing.T, args ...string) (code int, errOut string) {
	t.Helper()
	var outBuf, errBuf bytes.Buffer
	stdout, stderr = &outBuf, &errBuf
	defer func() { stdout, stderr = nil, nil }()
	return cli(args), errBuf.String()
}

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestUndocumentedIdentifiersFail: a package missing its package comment
// and doc comments on exported identifiers is reported, one problem per
// identifier, with a non-zero exit.
func TestUndocumentedIdentifiersFail(t *testing.T) {
	dir := writePkg(t, `package p

const Exported = 1

var V int

func F() {}

type T struct{}

func (T) M() {}

// documented is unexported and undocumented identifiers that are
// unexported stay out of the report.
func hidden() {}
`)
	code, errOut := runCLI(t, dir)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, errOut)
	}
	for _, want := range []string{
		"package p has no package comment",
		"exported const Exported",
		"exported var V",
		"exported func F",
		"exported type T",
		"exported method T.M",
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
	if strings.Contains(errOut, "hidden") {
		t.Errorf("unexported func reported:\n%s", errOut)
	}
}

// TestDocumentedPackagePasses: full doc coverage exits zero with no
// output.
func TestDocumentedPackagePasses(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// Exported is documented.
const Exported = 1

// F is documented.
func F() {}

// T is documented.
type T struct{}

// M is documented.
func (T) M() {}
`)
	code, errOut := runCLI(t, dir)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errOut)
	}
	if errOut != "" {
		t.Errorf("unexpected output:\n%s", errOut)
	}
}

// TestAPIDocRouteCoverage: -api fails when a registered route is
// missing from the document and passes when all are present.
func TestAPIDocRouteCoverage(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.md")
	if err := os.WriteFile(full, []byte(strings.Join(serve.Routes(), "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, errOut := runCLI(t, "-api", full); code != 0 {
		t.Errorf("complete API doc: exit %d, stderr:\n%s", code, errOut)
	}

	partial := filepath.Join(dir, "partial.md")
	routes := serve.Routes()
	if err := os.WriteFile(partial, []byte(strings.Join(routes[:len(routes)-1], "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, errOut := runCLI(t, "-api", partial)
	if code != 1 {
		t.Errorf("incomplete API doc: exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "is not documented") {
		t.Errorf("stderr missing the undocumented-route problem:\n%s", errOut)
	}
}

// TestRealPackagesPass runs the checker over the packages `make
// docs-check` gates, so a doc regression fails here before it fails in
// CI.
func TestRealPackagesPass(t *testing.T) {
	code, errOut := runCLI(t, "-api", "../../docs/API.md", "../..", "../../internal/serve")
	if code != 0 {
		t.Errorf("docs-check over the facade and serve failed:\n%s", errOut)
	}
}

// TestDeprecatedNeedsReplacementPointer: a "Deprecated:" notice without
// a "use ..." replacement pointer is a problem; one with the pointer
// passes. The rule covers funcs, types, methods and values alike.
func TestDeprecatedNeedsReplacementPointer(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// F is old.
//
// Deprecated: F is going away.
func F() {}

// G is old.
//
// Deprecated: use H instead.
func G() {}

// H is documented.
func H() {}

// T is old.
//
// Deprecated: gone.
type T struct{}

// M is documented.
//
// Deprecated: use H.
func (T) M() {}

// C is old.
//
// Deprecated: obsolete.
const C = 1
`)
	code, errOut := runCLI(t, dir)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, errOut)
	}
	for _, want := range []string{
		"exported func F is deprecated without a replacement pointer",
		"exported type T is deprecated without a replacement pointer",
		"exported const C is deprecated without a replacement pointer",
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
	for _, clean := range []string{"func G", "method T.M"} {
		if strings.Contains(errOut, clean) {
			t.Errorf("%s has a replacement pointer but was reported:\n%s", clean, errOut)
		}
	}
}

// TestDesignDocCheck: the design-space guide must name every Spec
// field and Axes axis; a doc missing one fails with a problem naming
// it, and the repository's real guide passes.
func TestDesignDocCheck(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "design.md")
	if err := os.WriteFile(bad, []byte("Scale Sim Config ProcsPerCluster SCCBytes Axes Parallelism TraceCacheDir Verify Backend Cluster line_bytes assoc repl hierarchy"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, errOut := runCLI(t, "-design", bad)
	if code != 1 || !strings.Contains(errOut, `"l1_bytes" is not documented`) {
		t.Errorf("missing axis: exit %d, stderr:\n%s", code, errOut)
	}

	good := filepath.Join(dir, "good.md")
	if err := os.WriteFile(good, []byte("Scale Sim Config ProcsPerCluster SCCBytes Axes Parallelism TraceCacheDir Verify Backend Cluster line_bytes assoc repl hierarchy l1_bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, errOut := runCLI(t, "-design", good); code != 0 {
		t.Errorf("complete doc: exit %d, stderr:\n%s", code, errOut)
	}
}

// TestLinkCheck: relative markdown links must resolve; external URLs
// and in-page anchors are ignored.
func TestLinkCheck(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "other.md"), []byte("target"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join(dir, "doc.md")
	body := "[ok](other.md) [anchor](other.md#sec) [self](#here) [web](https://example.com/x) [gone](missing.md)"
	if err := os.WriteFile(doc, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	code, errOut := runCLI(t, "-links", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, `broken relative link "missing.md"`) {
		t.Errorf("missing.md not reported:\n%s", errOut)
	}
	if strings.Contains(errOut, "other.md") || strings.Contains(errOut, "example.com") {
		t.Errorf("false positive reported:\n%s", errOut)
	}
}
