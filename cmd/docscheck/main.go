// Command docscheck enforces the repository's documentation contract:
// every listed package must carry a package comment and a doc comment
// on each exported top-level identifier (consts, vars, funcs, types and
// their exported methods), every "Deprecated:" notice must point at the
// replacement ("Deprecated: use X instead" — a deprecation that leaves
// the reader stranded is a problem), docs/API.md must mention every
// HTTP route the serve package registers, the design-space guide must
// name every sccsim.Spec field and every architecture axis (so a new
// sweep axis cannot ship undocumented), and relative markdown links
// must resolve to files that exist.
//
// Usage:
//
//	docscheck [-api docs/API.md] [-design docs/DESIGN-SPACE.md] [-links README.md,docs] DIR...
//
// Each DIR is parsed as one Go package (test files excluded). Problems
// are listed one per line on stderr and the exit code is non-zero when
// any are found, so `make docs-check` and CI fail loudly. The source
// checks are purely static; -design reflects over the library's Spec
// and Axes types so the field list can never drift from the code.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"

	"sccsim"
	"sccsim/internal/serve"
)

// stdout is unused (docscheck emits data nowhere); stderr receives the
// problem list. Tests swap them.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli parses args, runs every check, and returns the exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("docscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	apiDoc := fs.String("api", "", "markdown file that must mention every serve route")
	designDoc := fs.String("design", "", "markdown file that must name every sccsim.Spec field and Axes axis")
	links := fs.String("links", "", "comma-separated markdown files/directories whose relative links must resolve")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var problems []string
	for _, dir := range fs.Args() {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "docscheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if *apiDoc != "" {
		ps, err := checkAPIDoc(*apiDoc, serve.Routes())
		if err != nil {
			fmt.Fprintf(stderr, "docscheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if *designDoc != "" {
		ps, err := checkDesignDoc(*designDoc)
		if err != nil {
			fmt.Fprintf(stderr, "docscheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if *links != "" {
		ps, err := checkLinks(strings.Split(*links, ","))
		if err != nil {
			fmt.Fprintf(stderr, "docscheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(stderr, p)
		}
		fmt.Fprintf(stderr, "docscheck: %d problem(s)\n", len(problems))
		return 1
	}
	return 0
}

// checkDir parses the package in dir and returns one problem string per
// undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		d := doc.New(pkg, dir, 0)
		add := func(format string, a ...any) {
			problems = append(problems, dir+": "+fmt.Sprintf(format, a...))
		}
		if strings.TrimSpace(d.Doc) == "" {
			add("package %s has no package comment", name)
		}
		values := func(kind string, vs []*doc.Value) {
			for _, v := range vs {
				for _, n := range v.Names {
					if !ast.IsExported(n) {
						continue
					}
					if strings.TrimSpace(v.Doc) == "" {
						add("exported %s %s has no doc comment", kind, n)
					} else if deprecatedWithoutPointer(v.Doc) {
						add("exported %s %s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", kind, n)
					}
				}
			}
		}
		funcs := func(prefix string, fns []*doc.Func) {
			for _, f := range fns {
				if !ast.IsExported(f.Name) {
					continue
				}
				if strings.TrimSpace(f.Doc) == "" {
					add("exported func %s%s has no doc comment", prefix, f.Name)
				} else if deprecatedWithoutPointer(f.Doc) {
					add("exported func %s%s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", prefix, f.Name)
				}
			}
		}
		values("const", d.Consts)
		values("var", d.Vars)
		funcs("", d.Funcs)
		for _, t := range d.Types {
			if ast.IsExported(t.Name) {
				if strings.TrimSpace(t.Doc) == "" {
					add("exported type %s has no doc comment", t.Name)
				} else if deprecatedWithoutPointer(t.Doc) {
					add("exported type %s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", t.Name)
				}
			}
			values("const", t.Consts)
			values("var", t.Vars)
			funcs("", t.Funcs)
			var methodPrefix = t.Name + "."
			for _, m := range t.Methods {
				if !ast.IsExported(m.Name) {
					continue
				}
				if strings.TrimSpace(m.Doc) == "" {
					add("exported method %s%s has no doc comment", methodPrefix, m.Name)
				} else if deprecatedWithoutPointer(m.Doc) {
					add("exported method %s%s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", methodPrefix, m.Name)
				}
			}
		}
	}
	return problems, nil
}

// deprecatedWithoutPointer reports whether a doc comment carries a
// "Deprecated:" notice that never tells the reader what to use instead.
// The convention (and what godoc renders specially) is a paragraph
// starting "Deprecated:"; the replacement pointer is any "use ..."
// phrase after it.
func deprecatedWithoutPointer(docText string) bool {
	idx := strings.Index(docText, "Deprecated:")
	if idx < 0 {
		return false
	}
	return !strings.Contains(strings.ToLower(docText[idx:]), "use ")
}

// specAxisNames collects the names the design-space guide must carry:
// every field of the declarative sccsim.Spec (its JSON names — the Go
// field names, since Spec carries no tags) and every architecture axis
// of sccsim.Axes (its wire tags). Reflection keeps the list in
// lockstep with the code: adding a Spec field or an axis without
// documenting it fails `make docs-check`.
func specAxisNames() []string {
	var names []string
	collect := func(t reflect.Type) {
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			name := f.Name
			if tag, _, _ := strings.Cut(f.Tag.Get("json"), ","); tag != "" && tag != "-" {
				name = tag
			}
			names = append(names, name)
		}
	}
	collect(reflect.TypeOf(sccsim.Spec{}))
	collect(reflect.TypeOf(sccsim.Axes{}))
	return names
}

// checkDesignDoc verifies every Spec field and Axes axis name appears
// in the design-space guide.
func checkDesignDoc(path string) ([]string, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, name := range specAxisNames() {
		if !strings.Contains(string(content), name) {
			problems = append(problems, fmt.Sprintf("%s: design-space axis/field %q is not documented", path, name))
		}
	}
	return problems, nil
}

// mdLink matches inline markdown links; the destination is group 1.
// Reference-style links and autolinks are out of scope — the repo's
// docs use inline links only.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative link in the given markdown
// files (directories contribute their *.md entries, non-recursive)
// resolves to an existing file or directory. External URLs and pure
// in-page anchors are skipped; a relative target's #fragment is
// stripped before the existence check.
func checkLinks(targets []string) ([]string, error) {
	var files []string
	for _, t := range targets {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		info, err := os.Stat(t)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, t)
			continue
		}
		md, err := filepath.Glob(filepath.Join(t, "*.md"))
		if err != nil {
			return nil, err
		}
		files = append(files, md...)
	}
	var problems []string
	for _, f := range files {
		content, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(content), -1) {
			dest := m[1]
			if strings.Contains(dest, "://") || strings.HasPrefix(dest, "#") ||
				strings.HasPrefix(dest, "mailto:") {
				continue
			}
			dest, _, _ = strings.Cut(dest, "#")
			if dest == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(f), dest)); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", f, m[1]))
			}
		}
	}
	return problems, nil
}

// checkAPIDoc verifies every route pattern appears verbatim in the API
// document.
func checkAPIDoc(path string, routes []string) ([]string, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, r := range routes {
		if !strings.Contains(string(content), r) {
			problems = append(problems, fmt.Sprintf("%s: route %q is not documented", path, r))
		}
	}
	return problems, nil
}
