// Command docscheck enforces the repository's documentation contract:
// every listed package must carry a package comment and a doc comment
// on each exported top-level identifier (consts, vars, funcs, types and
// their exported methods), every "Deprecated:" notice must point at the
// replacement ("Deprecated: use X instead" — a deprecation that leaves
// the reader stranded is a problem), and docs/API.md must mention every
// HTTP route the serve package registers.
//
// Usage:
//
//	docscheck [-api docs/API.md] DIR...
//
// Each DIR is parsed as one Go package (test files excluded). Problems
// are listed one per line on stderr and the exit code is non-zero when
// any are found, so `make docs-check` and CI fail loudly. It is a
// purely static check — nothing is executed, only parsed.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"strings"

	"sccsim/internal/serve"
)

// stdout is unused (docscheck emits data nowhere); stderr receives the
// problem list. Tests swap them.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	os.Exit(cli(os.Args[1:]))
}

// cli parses args, runs every check, and returns the exit code.
func cli(args []string) int {
	fs := flag.NewFlagSet("docscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	apiDoc := fs.String("api", "", "markdown file that must mention every serve route")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var problems []string
	for _, dir := range fs.Args() {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "docscheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if *apiDoc != "" {
		ps, err := checkAPIDoc(*apiDoc, serve.Routes())
		if err != nil {
			fmt.Fprintf(stderr, "docscheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(stderr, p)
		}
		fmt.Fprintf(stderr, "docscheck: %d problem(s)\n", len(problems))
		return 1
	}
	return 0
}

// checkDir parses the package in dir and returns one problem string per
// undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		d := doc.New(pkg, dir, 0)
		add := func(format string, a ...any) {
			problems = append(problems, dir+": "+fmt.Sprintf(format, a...))
		}
		if strings.TrimSpace(d.Doc) == "" {
			add("package %s has no package comment", name)
		}
		values := func(kind string, vs []*doc.Value) {
			for _, v := range vs {
				for _, n := range v.Names {
					if !ast.IsExported(n) {
						continue
					}
					if strings.TrimSpace(v.Doc) == "" {
						add("exported %s %s has no doc comment", kind, n)
					} else if deprecatedWithoutPointer(v.Doc) {
						add("exported %s %s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", kind, n)
					}
				}
			}
		}
		funcs := func(prefix string, fns []*doc.Func) {
			for _, f := range fns {
				if !ast.IsExported(f.Name) {
					continue
				}
				if strings.TrimSpace(f.Doc) == "" {
					add("exported func %s%s has no doc comment", prefix, f.Name)
				} else if deprecatedWithoutPointer(f.Doc) {
					add("exported func %s%s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", prefix, f.Name)
				}
			}
		}
		values("const", d.Consts)
		values("var", d.Vars)
		funcs("", d.Funcs)
		for _, t := range d.Types {
			if ast.IsExported(t.Name) {
				if strings.TrimSpace(t.Doc) == "" {
					add("exported type %s has no doc comment", t.Name)
				} else if deprecatedWithoutPointer(t.Doc) {
					add("exported type %s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", t.Name)
				}
			}
			values("const", t.Consts)
			values("var", t.Vars)
			funcs("", t.Funcs)
			var methodPrefix = t.Name + "."
			for _, m := range t.Methods {
				if !ast.IsExported(m.Name) {
					continue
				}
				if strings.TrimSpace(m.Doc) == "" {
					add("exported method %s%s has no doc comment", methodPrefix, m.Name)
				} else if deprecatedWithoutPointer(m.Doc) {
					add("exported method %s%s is deprecated without a replacement pointer (want \"Deprecated: use ...\")", methodPrefix, m.Name)
				}
			}
		}
	}
	return problems, nil
}

// deprecatedWithoutPointer reports whether a doc comment carries a
// "Deprecated:" notice that never tells the reader what to use instead.
// The convention (and what godoc renders specially) is a paragraph
// starting "Deprecated:"; the replacement pointer is any "use ..."
// phrase after it.
func deprecatedWithoutPointer(docText string) bool {
	idx := strings.Index(docText, "Deprecated:")
	if idx < 0 {
		return false
	}
	return !strings.Contains(strings.ToLower(docText[idx:]), "use ")
}

// checkAPIDoc verifies every route pattern appears verbatim in the API
// document.
func checkAPIDoc(path string, routes []string) ([]string, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, r := range routes {
		if !strings.Contains(string(content), r) {
			problems = append(problems, fmt.Sprintf("%s: route %q is not documented", path, r))
		}
	}
	return problems, nil
}
