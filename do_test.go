package sccsim_test

import (
	"context"
	"errors"
	"testing"

	"sccsim"
)

// The functional-options experiment API must agree exactly with the
// deprecated wrappers it replaces.
func TestDoMatchesRun(t *testing.T) {
	s := sccsim.QuickScale()
	old, err := sccsim.Run(sccsim.BarnesHut, 2, 32*1024, s)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithPoint(2, 32*1024), sccsim.WithScale(s))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Result.Cycles != old.Result.Cycles || pt.Result.Refs != old.Result.Refs {
		t.Errorf("Do = %d cycles / %d refs, Run = %d / %d",
			pt.Result.Cycles, pt.Result.Refs, old.Result.Cycles, old.Result.Refs)
	}
	if pt.Config != old.Config {
		t.Errorf("Do config %v, Run config %v", pt.Config, old.Config)
	}
}

func TestDoDefaultPoint(t *testing.T) {
	pt, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithScale(sccsim.QuickScale()))
	if err != nil {
		t.Fatal(err)
	}
	// The default design point is the paper's 1P/64KB baseline.
	if pt.Config.ProcsPerCluster != 1 || pt.Config.SCCBytes != 64*1024 || pt.Config.Clusters != 4 {
		t.Errorf("default point = %v", pt.Config)
	}
}

func TestDoWithConfig(t *testing.T) {
	cfg := sccsim.DefaultConfig(2, 32*1024)
	cfg.Assoc = 2
	pt, err := sccsim.Do(context.Background(), sccsim.BarnesHut,
		sccsim.WithConfig(cfg), sccsim.WithScale(sccsim.QuickScale()))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Config.Assoc != 2 {
		t.Errorf("associativity not preserved: %v", pt.Config)
	}
	// An explicit Config is a parallel-workload feature, as in RunConfig.
	if _, err := sccsim.Do(context.Background(), sccsim.Multiprog,
		sccsim.WithConfig(cfg), sccsim.WithScale(sccsim.QuickScale())); err == nil {
		t.Error("Do accepted WithConfig for the multiprogramming workload")
	}
}

func TestSweepCtxMatchesSweepWithProgress(t *testing.T) {
	s := sccsim.QuickScale()
	old, err := sccsim.Sweep(sccsim.BarnesHut, s)
	if err != nil {
		t.Fatal(err)
	}
	var events int
	grid, err := sccsim.SweepCtx(context.Background(), sccsim.BarnesHut,
		sccsim.WithScale(s), sccsim.WithParallelism(2),
		sccsim.WithProgress(func(p sccsim.Progress) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sccsim.SpeedupTable(grid), sccsim.SpeedupTable(old); got != want {
		t.Errorf("SweepCtx table diverged from Sweep:\n%s\nvs\n%s", got, want)
	}
	if want := len(sccsim.SCCSizes) * len(sccsim.ProcsPerClusterSweep); events != want {
		t.Errorf("progress events = %d, want %d", events, want)
	}
}

func TestSweepCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sccsim.SweepCtx(ctx, sccsim.MP3D, sccsim.WithScale(sccsim.QuickScale()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBuildCostPerfEntryCtx(t *testing.T) {
	s := sccsim.QuickScale()
	e, err := sccsim.BuildCostPerfEntryCtx(context.Background(), sccsim.Cholesky,
		sccsim.WithScale(s), sccsim.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	old, err := sccsim.BuildCostPerfEntry(sccsim.Cholesky, s)
	if err != nil {
		t.Fatal(err)
	}
	for ppc, raw := range old.RawCycles {
		if e.RawCycles[ppc] != raw {
			t.Errorf("%dP: ctx entry %d cycles, serial %d", ppc, e.RawCycles[ppc], raw)
		}
	}
}
