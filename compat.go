// Backward-compatibility shims. Every function here predates the
// functional-options API and survives only so old callers keep
// compiling: each is a one-line delegation to Do or SweepCtx with the
// equivalent options, adds no behavior of its own, and is frozen — new
// capabilities (backends, verification, observability) appear only as
// options on the modern entry points. New code should not call
// anything in this file.
package sccsim

import "context"

// Run simulates one workload at one design point.
//
// Deprecated: use Do with WithPoint and WithScale.
func Run(w Workload, procsPerCluster, sccBytes int, s Scale) (*Point, error) {
	return Do(context.Background(), w, WithPoint(procsPerCluster, sccBytes), WithScale(s))
}

// RunWithOptions is Run with explicit simulator options.
//
// Deprecated: use Do with WithPoint, WithScale and WithSimOptions.
func RunWithOptions(w Workload, procsPerCluster, sccBytes int, s Scale, opts Options) (*Point, error) {
	return Do(context.Background(), w, WithPoint(procsPerCluster, sccBytes), WithScale(s), WithSimOptions(opts))
}

// RunConfig simulates a parallel workload on an arbitrary configuration
// (cluster count, associativity, load latency all free).
//
// Deprecated: use Do with WithConfig.
func RunConfig(w Workload, cfg Config, s Scale, opts Options) (*Point, error) {
	return Do(context.Background(), w, WithConfig(cfg), WithScale(s), WithSimOptions(opts))
}

// Sweep runs a workload over the full processor-cache design space
// (Figures 2-6 of the paper) on the concurrent sweep engine at the
// default parallelism.
//
// Deprecated: use SweepCtx with WithScale.
func Sweep(w Workload, s Scale) (*Grid, error) {
	return SweepCtx(context.Background(), w, WithScale(s))
}

// SweepWithOptions is Sweep with explicit simulator options (ablations).
//
// Deprecated: use SweepCtx with WithScale and WithSimOptions.
func SweepWithOptions(w Workload, s Scale, opts Options) (*Grid, error) {
	return SweepCtx(context.Background(), w, WithScale(s), WithSimOptions(opts))
}
