package sccsim_test

import (
	"testing"

	"sccsim"
)

func TestRunPrivateCachesAPI(t *testing.T) {
	s := sccsim.QuickScale()
	shared, err := sccsim.Run(sccsim.BarnesHut, 4, 64*1024, s)
	if err != nil {
		t.Fatal(err)
	}
	private, err := sccsim.RunPrivateCaches(sccsim.BarnesHut, 4, 64*1024, s)
	if err != nil {
		t.Fatal(err)
	}
	if private.Result.Cycles == 0 {
		t.Fatal("empty private-cache result")
	}
	if private.Result.Snoop.Invalidations < shared.Result.Snoop.Invalidations {
		t.Errorf("private caches fewer invalidations (%d) than shared (%d)",
			private.Result.Snoop.Invalidations, shared.Result.Snoop.Invalidations)
	}
}

func TestRunFlatAPI(t *testing.T) {
	s := sccsim.QuickScale()
	flat, err := sccsim.RunFlat(sccsim.MP3D, 8, 16*1024, s)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Config.Clusters != 8 || flat.Config.ProcsPerCluster != 1 {
		t.Errorf("flat config = %+v", flat.Config)
	}
	if flat.Result.Cycles == 0 {
		t.Error("empty flat result")
	}
}

func TestRunConfigAPI(t *testing.T) {
	s := sccsim.QuickScale()
	cfg := sccsim.DefaultConfig(2, 32*1024)
	cfg.Assoc = 2
	pt, err := sccsim.RunConfig(sccsim.BarnesHut, cfg, s, sccsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Config.Assoc != 2 {
		t.Errorf("associativity not preserved: %+v", pt.Config)
	}
	// 2-way must not miss more than direct-mapped on the same trace.
	dm, err := sccsim.Run(sccsim.BarnesHut, 2, 32*1024, s)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Result.ReadMissRate() > dm.Result.ReadMissRate()*1.02 {
		t.Errorf("2-way miss rate %.3f above direct-mapped %.3f",
			pt.Result.ReadMissRate(), dm.Result.ReadMissRate())
	}
}

func TestRunWithOptionsAPI(t *testing.T) {
	s := sccsim.QuickScale()
	base, err := sccsim.RunWithOptions(sccsim.MP3D, 2, 16*1024, s, sccsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := sccsim.RunWithOptions(sccsim.MP3D, 2, 16*1024, s, sccsim.Options{WriteBufferDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Result.Cycles < base.Result.Cycles {
		t.Error("depth-1 write buffer faster than default")
	}
}

func TestBuildCostPerfEntryAPI(t *testing.T) {
	e, err := sccsim.BuildCostPerfEntry(sccsim.Cholesky, sccsim.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if e.Normalized(8) != 1.0 {
		t.Errorf("Normalized(8) = %v", e.Normalized(8))
	}
	sc := sccsim.CompareSingleChip([]*sccsim.CostPerfEntry{e})
	if sc.AreaRatio < 1.3 || sc.AreaRatio > 1.45 {
		t.Errorf("area ratio = %v", sc.AreaRatio)
	}
	m := sccsim.CompareMCM([]*sccsim.CostPerfEntry{e})
	if m.MeanScaling <= 0 {
		t.Errorf("MCM scaling = %v", m.MeanScaling)
	}
}
